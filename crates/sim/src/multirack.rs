//! Scale-out to multiple racks (Fig. 10(f), §5 "Scaling to multiple
//! racks").
//!
//! The paper simulates up to 4096 servers on 32 racks with read-only
//! workloads, assuming switches absorb the queries to the items they
//! cache. Three schemes:
//!
//! - **NoCache** — bottlenecked by the single most-loaded server; adding
//!   servers does not help ("the overall system throughput of NoCache
//!   stays very low and is not growing").
//! - **LeafCache** — each ToR caches the hottest keys *of its own rack*,
//!   balancing servers within a rack; the load imbalance *between* racks
//!   remains and caps scaling.
//! - **LeafSpineCache** — spine switches additionally cache the globally
//!   hottest keys, balancing across racks; throughput grows linearly.

use netcache_proto::Key;
use netcache_store::Partitioner;
use netcache_workload::ZipfGenerator;

/// Which scale-out caching scheme to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleOutScheme {
    /// No caching anywhere.
    NoCache,
    /// ToR (leaf) caches only.
    LeafCache,
    /// Spine caches over leaf caches.
    LeafSpineCache,
}

/// Multi-rack model configuration.
#[derive(Debug, Clone)]
pub struct MultiRackConfig {
    /// Servers per rack (128 in the paper).
    pub servers_per_rack: u32,
    /// Distinct keys in the workload.
    pub num_keys: u64,
    /// Zipf skew (0.99 in the paper's Fig. 10(f)).
    pub theta: f64,
    /// Items cached per ToR switch.
    pub leaf_cache_items: usize,
    /// Items cached in the spine layer (globally hottest keys).
    pub spine_cache_items: usize,
    /// Per-server rate, QPS.
    pub server_rate: f64,
    /// A ToR switch's packet rate, QPS — every query into or served by a
    /// rack crosses its ToR, so the most-loaded ToR caps the system.
    pub leaf_switch_rate: f64,
    /// Partitioner seed.
    pub partition_seed: u64,
}

impl Default for MultiRackConfig {
    fn default() -> Self {
        MultiRackConfig {
            servers_per_rack: 128,
            num_keys: 1_000_000,
            theta: 0.99,
            leaf_cache_items: 10_000,
            spine_cache_items: 10_000,
            server_rate: 10e6,
            leaf_switch_rate: 2e9,
            partition_seed: 1,
        }
    }
}

/// The multi-rack saturated-throughput model.
#[derive(Debug, Clone)]
pub struct MultiRackModel {
    config: MultiRackConfig,
}

impl MultiRackModel {
    /// Creates the model.
    pub fn new(config: MultiRackConfig) -> Self {
        MultiRackModel { config }
    }

    /// Saturated system throughput with `racks` racks under `scheme`.
    ///
    /// Keys are hash-partitioned over all `racks × servers_per_rack`
    /// servers; server `s` belongs to rack `s / servers_per_rack`. Leaf
    /// caches hold each rack's hottest owned keys; the spine cache holds
    /// the globally hottest keys (queries to them never reach a rack).
    ///
    /// Two bounds cap the client rate `O`:
    ///
    /// - **server bound** — no server may exceed its rate:
    ///   `O ≤ T / max_server_share(uncached)`;
    /// - **ToR bound** — every query a rack receives (served by the ToR
    ///   cache or by a server behind it) crosses its ToR, so
    ///   `O ≤ R_tor / max_rack_share`. This is what limits leaf-only
    ///   caching: the rack homing the globally hottest keys funnels a
    ///   disproportionate share of all traffic through one ToR. Spine
    ///   caching absorbs those keys *above* the ToRs (and the spine layer
    ///   grows with the fabric), which is why Leaf-Spine scales linearly.
    pub fn throughput(&self, racks: u32, scheme: ScaleOutScheme) -> f64 {
        let c = &self.config;
        let servers = racks * c.servers_per_rack;
        let zipf = ZipfGenerator::new(c.num_keys, c.theta);
        let partitioner = Partitioner::new(servers, c.partition_seed);

        // Per-server uncached shares and per-rack total shares.
        let mut server_share = vec![0.0f64; servers as usize];
        let mut rack_share = vec![0.0f64; racks as usize];
        // Per-rack (hottest-first) budget of leaf cache slots.
        let mut leaf_budget = vec![
            match scheme {
                ScaleOutScheme::NoCache => 0usize,
                _ => c.leaf_cache_items,
            };
            racks as usize
        ];
        let spine_budget = match scheme {
            ScaleOutScheme::LeafSpineCache => c.spine_cache_items as u64,
            _ => 0,
        };

        for rank in 0..c.num_keys {
            let p = zipf.probability(rank);
            // Spine cache absorbs the globally hottest keys first, before
            // traffic fans out to racks.
            if rank < spine_budget {
                continue;
            }
            let server = partitioner.partition_of(&Key::from_u64(rank)) as usize;
            let rack = server / c.servers_per_rack as usize;
            rack_share[rack] += p;
            // Leaf cache: each ToR caches the hottest keys homed in its
            // rack. Ranks arrive hottest-first, so a simple budget per
            // rack implements "the rack's top-K keys".
            if leaf_budget[rack] > 0 {
                leaf_budget[rack] -= 1;
                continue;
            }
            server_share[server] += p;
        }
        let max_server_share = server_share.iter().copied().fold(0.0, f64::max);
        let max_rack_share = rack_share.iter().copied().fold(0.0, f64::max);
        let server_bound = if max_server_share > 0.0 {
            c.server_rate / max_server_share
        } else {
            f64::INFINITY
        };
        let tor_bound = if max_rack_share > 0.0 {
            c.leaf_switch_rate / max_rack_share
        } else {
            f64::INFINITY
        };
        let bound = server_bound.min(tor_bound);
        if bound.is_infinite() {
            // Everything spine-cached: the spine layer scales with the
            // fabric; report the aggregate server capacity as the paper's
            // linear reference.
            return f64::from(servers) * c.server_rate;
        }
        bound
    }

    /// The throughput series over rack counts, for one scheme.
    pub fn series(&self, rack_counts: &[u32], scheme: ScaleOutScheme) -> Vec<f64> {
        rack_counts
            .iter()
            .map(|&r| self.throughput(r, scheme))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MultiRackModel {
        // Paper scale (128 servers/rack, 10 MQPS servers, 2 BQPS ToRs)
        // with a reduced keyspace to keep the O(num_keys) passes fast.
        MultiRackModel::new(MultiRackConfig {
            servers_per_rack: 128,
            num_keys: 200_000,
            leaf_cache_items: 1_000,
            spine_cache_items: 1_000,
            ..MultiRackConfig::default()
        })
    }

    #[test]
    fn nocache_does_not_scale() {
        let m = model();
        let t1 = m.throughput(1, ScaleOutScheme::NoCache);
        let t32 = m.throughput(32, ScaleOutScheme::NoCache);
        assert!(
            t32 < t1 * 4.0,
            "NoCache should stay near-flat: {t1:.3e} → {t32:.3e}"
        );
    }

    #[test]
    fn leaf_cache_scales_sublinearly() {
        let m = model();
        let t1 = m.throughput(1, ScaleOutScheme::LeafCache);
        let t32 = m.throughput(32, ScaleOutScheme::LeafCache);
        let scaling = t32 / t1;
        assert!(
            scaling > 1.1 && scaling < 24.0,
            "LeafCache scaling {scaling} should be limited by inter-rack imbalance"
        );
    }

    #[test]
    fn leaf_spine_scales_linearly() {
        let m = model();
        let t1 = m.throughput(1, ScaleOutScheme::LeafSpineCache);
        let t32 = m.throughput(32, ScaleOutScheme::LeafSpineCache);
        let scaling = t32 / t1;
        assert!(
            scaling > 16.0,
            "Leaf-Spine-Cache scaling {scaling} should be near-linear (32×)"
        );
    }

    #[test]
    fn ordering_matches_paper() {
        let m = model();
        for racks in [4u32, 16, 32] {
            let no = m.throughput(racks, ScaleOutScheme::NoCache);
            let leaf = m.throughput(racks, ScaleOutScheme::LeafCache);
            let spine = m.throughput(racks, ScaleOutScheme::LeafSpineCache);
            assert!(
                no < leaf && leaf <= spine,
                "racks {racks}: {no:.3e} / {leaf:.3e} / {spine:.3e}"
            );
        }
    }

    #[test]
    fn series_matches_pointwise() {
        let m = model();
        let series = m.series(&[1, 2, 4], ScaleOutScheme::LeafCache);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], m.throughput(1, ScaleOutScheme::LeafCache));
    }
}
