//! Scale-out to multiple racks (Fig. 10(f), §5 "Scaling to multiple
//! racks"), both as the paper's analytical model and as a *real*
//! two-layer deployment in the DistCache direction.
//!
//! The paper simulates up to 4096 servers on 32 racks with read-only
//! workloads, assuming switches absorb the queries to the items they
//! cache. Three schemes:
//!
//! - **NoCache** — bottlenecked by the single most-loaded server; adding
//!   servers does not help ("the overall system throughput of NoCache
//!   stays very low and is not growing").
//! - **LeafCache** — each ToR caches the hottest keys *of its own rack*,
//!   balancing servers within a rack; the load imbalance *between* racks
//!   remains and caps scaling.
//! - **LeafSpineCache** — spine switches additionally cache the globally
//!   hottest keys, balancing across racks; throughput grows linearly.
//!
//! [`MultiRackModel`] is the closed-form account of those three schemes.
//! [`MultiRack`] is the deployed counterpart: a spine cache layer built
//! from the *same* [`NetCacheSwitch`] program and [`Controller`] control
//! loop fronting N in-process leaf racks (each a full
//! [`netcache::Rack`], driven through the [`RackDrive`] fabric
//! contract), with the three DistCache ingredients made concrete:
//!
//! - **independent hash functions per layer** — keys map to leaf racks
//!   by one seeded [`Partitioner`] (`rack_seed`) and to spine switches
//!   by another (`spine_seed`), so a rack that homes many hot keys does
//!   not also congest a single spine;
//! - **power-of-two-choices routing** — a read of a spine-cached key
//!   goes to whichever of its two cache copies (owning leaf ToR, or
//!   spine) has received less traffic in the current window;
//! - **cross-rack hot-key aggregation** — every query that is not
//!   served by the spine cache crosses a spine switch, so the spine's
//!   Count-Min sketch observes the *global* miss stream and its
//!   controller's heavy-hitter reports pick the cluster-wide hottest
//!   keys, exactly how one rack's controller picks rack-hot keys.
//!
//! Coherence stays §4.3-fresh across both layers: a write through the
//! spine invalidates the spine copy in the data plane before it ever
//! reaches the leaf (the spine's `PutCached` rewrite is converted back
//! to a plain `Put` at the rack boundary so the leaf performs its own
//! invalidate-then-update dance), and spine entries are refreshed
//! write-around by the spine controller's repair pass. A dead leaf rack
//! is a network partition: its valid spine entries keep serving reads,
//! while writes to it die unacknowledged and the repair pass evicts the
//! entries it can no longer re-fetch.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use netcache::addressing::SERVER_IP_BASE;
use netcache::{
    ClientCounters, ClientResponse, FaultConfig, Link, Rack, RackDrive, RackError, RackHandle,
    RequestEngine, RetryOutcome, RetryPolicy, ShardedHistogram,
};
use netcache_client::{ClientConfig, NetCacheClient, Response};
use netcache_controller::{Controller, ControllerConfig, KeyHome, ServerBackend};
use netcache_dataplane::{NetCacheSwitch, PortId, SwitchConfig, SwitchDriver};
use netcache_proto::{Key, Op, Packet, Value};
use netcache_store::Partitioner;
use netcache_workload::ZipfGenerator;

use crate::rack_sim::{rack_config_for, SimConfig};

/// Odd 64-bit mixing constant (2⁶⁴/φ), used to derive per-rack and
/// per-spine seeds from the configuration seed.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Which scale-out caching scheme to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleOutScheme {
    /// No caching anywhere.
    NoCache,
    /// ToR (leaf) caches only.
    LeafCache,
    /// Spine caches over leaf caches.
    LeafSpineCache,
}

/// Multi-rack configuration, shared by the analytical model and the
/// deployed [`MultiRack`]. The model reads the workload/rate fields; the
/// deployment additionally reads the topology and seeding fields.
#[derive(Debug, Clone)]
pub struct MultiRackConfig {
    /// Servers per rack (128 in the paper).
    pub servers_per_rack: u32,
    /// Distinct keys in the workload.
    pub num_keys: u64,
    /// Zipf skew (0.99 in the paper's Fig. 10(f)).
    pub theta: f64,
    /// Items cached per ToR switch.
    pub leaf_cache_items: usize,
    /// Items cached in the spine layer (globally hottest keys), summed
    /// over all spine switches in the deployment.
    pub spine_cache_items: usize,
    /// Per-server rate, QPS.
    pub server_rate: f64,
    /// A ToR switch's packet rate, QPS — every query into or served by a
    /// rack crosses its ToR, so the most-loaded ToR caps the system.
    pub leaf_switch_rate: f64,
    /// A spine switch's packet rate, QPS (deployment-derived goodput).
    pub spine_switch_rate: f64,
    /// Intra-rack partitioner seed (key → server within its rack).
    pub partition_seed: u64,
    /// Leaf racks in the deployment.
    pub racks: u32,
    /// Spine switches in the deployment. `spine_cache_items == 0`
    /// disables the spine layer entirely (queries go straight to their
    /// owning rack), which is the Leaf-Cache scheme — and, with one rack,
    /// exactly a single-rack NetCache deployment.
    pub spines: u32,
    /// Client attachment points (each leaf rack and each spine exposes
    /// one port per client).
    pub clients: u32,
    /// Value size in bytes (≤ [`netcache_proto::MAX_VALUE_LEN`]).
    pub value_len: usize,
    /// Hash seed of the key → rack layer (independent of `spine_seed`).
    pub rack_seed: u64,
    /// Hash seed of the key → spine layer (independent of `rack_seed`).
    pub spine_seed: u64,
    /// Heavy-hitter threshold for every switch's statistics pipeline.
    pub hot_threshold: u16,
    /// Statistics sampling rate.
    pub sample_rate: f64,
    /// Replicas per intra-rack partition (chain replication; 1 = none).
    pub replication_factor: u32,
    /// Network fault model applied on every leaf rack's internal links
    /// (per-rack seeds are derived so racks do not mirror each other).
    pub faults: FaultConfig,
    /// Master seed (switch hashing, controller sampling, per-rack
    /// derivation).
    pub seed: u64,
}

impl Default for MultiRackConfig {
    fn default() -> Self {
        MultiRackConfig {
            servers_per_rack: 128,
            num_keys: 1_000_000,
            theta: 0.99,
            leaf_cache_items: 10_000,
            spine_cache_items: 10_000,
            server_rate: 10e6,
            leaf_switch_rate: 2e9,
            spine_switch_rate: 2e9,
            partition_seed: 1,
            racks: 4,
            spines: 2,
            clients: 1,
            value_len: 64,
            rack_seed: 0x7261_636b,  // "rack"
            spine_seed: 0x7370_696e, // "spin"
            hot_threshold: 64,
            sample_rate: 1.0,
            replication_factor: 1,
            faults: FaultConfig::default(),
            seed: 0x5eed,
        }
    }
}

impl MultiRackConfig {
    /// Validates the configuration, with the same typed error the fabric
    /// layer gives [`netcache::RackConfig`]. Zero racks, zero servers and
    /// an entirely cache-less topology are rejected instead of silently
    /// producing division-by-zero shares or an unconstructible rack.
    pub fn validate(&self) -> Result<(), RackError> {
        let err = |msg: String| Err(RackError::InvalidConfig(msg));
        if self.racks == 0 {
            return err("racks must be positive".into());
        }
        if self.spines == 0 {
            return err("spines must be positive".into());
        }
        if self.servers_per_rack == 0 {
            return err("servers_per_rack must be positive".into());
        }
        if self.clients == 0 {
            return err("clients must be positive".into());
        }
        if self.num_keys == 0 {
            return err("num_keys must be positive".into());
        }
        if self.leaf_cache_items == 0 && self.spine_cache_items == 0 {
            return err("at least one cache layer must have items (leaf or spine)".into());
        }
        if !(self.theta.is_finite() && (0.0..1.0).contains(&self.theta)) {
            // The Zipf generator (YCSB parameterization) requires θ < 1.
            return err(format!("theta {} out of range [0, 1)", self.theta));
        }
        for (name, rate) in [
            ("server_rate", self.server_rate),
            ("leaf_switch_rate", self.leaf_switch_rate),
            ("spine_switch_rate", self.spine_switch_rate),
        ] {
            if !(rate.is_finite() && rate > 0.0) {
                return err(format!("{name} {rate} must be finite and positive"));
            }
        }
        if self.value_len == 0 || self.value_len > netcache_proto::MAX_VALUE_LEN {
            return err(format!(
                "value_len {} out of range 1..={}",
                self.value_len,
                netcache_proto::MAX_VALUE_LEN
            ));
        }
        if self.replication_factor == 0 || self.replication_factor > self.servers_per_rack {
            return err(format!(
                "replication_factor {} out of range 1..={}",
                self.replication_factor, self.servers_per_rack
            ));
        }
        Ok(())
    }
}

/// The multi-rack saturated-throughput model.
#[derive(Debug, Clone)]
pub struct MultiRackModel {
    config: MultiRackConfig,
}

impl MultiRackModel {
    /// Creates the model, rejecting invalid configurations.
    pub fn new(config: MultiRackConfig) -> Result<Self, RackError> {
        config.validate()?;
        Ok(MultiRackModel { config })
    }

    /// Saturated system throughput with `racks` racks under `scheme`.
    ///
    /// Keys are hash-partitioned over all `racks × servers_per_rack`
    /// servers; server `s` belongs to rack `s / servers_per_rack`. Leaf
    /// caches hold each rack's hottest owned keys; the spine cache holds
    /// the globally hottest keys (queries to them never reach a rack).
    ///
    /// Two bounds cap the client rate `O`:
    ///
    /// - **server bound** — no server may exceed its rate:
    ///   `O ≤ T / max_server_share(uncached)`;
    /// - **ToR bound** — every query a rack receives (served by the ToR
    ///   cache or by a server behind it) crosses its ToR, so
    ///   `O ≤ R_tor / max_rack_share`. This is what limits leaf-only
    ///   caching: the rack homing the globally hottest keys funnels a
    ///   disproportionate share of all traffic through one ToR. Spine
    ///   caching absorbs those keys *above* the ToRs (and the spine layer
    ///   grows with the fabric), which is why Leaf-Spine scales linearly.
    pub fn throughput(&self, racks: u32, scheme: ScaleOutScheme) -> f64 {
        let c = &self.config;
        let servers = racks * c.servers_per_rack;
        let zipf = ZipfGenerator::new(c.num_keys, c.theta);
        let partitioner = Partitioner::new(servers, c.partition_seed);

        // Per-server uncached shares and per-rack total shares.
        let mut server_share = vec![0.0f64; servers as usize];
        let mut rack_share = vec![0.0f64; racks as usize];
        // Per-rack (hottest-first) budget of leaf cache slots.
        let mut leaf_budget = vec![
            match scheme {
                ScaleOutScheme::NoCache => 0usize,
                _ => c.leaf_cache_items,
            };
            racks as usize
        ];
        let spine_budget = match scheme {
            ScaleOutScheme::LeafSpineCache => c.spine_cache_items as u64,
            _ => 0,
        };

        for rank in 0..c.num_keys {
            let p = zipf.probability(rank);
            // Spine cache absorbs the globally hottest keys first, before
            // traffic fans out to racks.
            if rank < spine_budget {
                continue;
            }
            let server = partitioner.partition_of(&Key::from_u64(rank)) as usize;
            let rack = server / c.servers_per_rack as usize;
            rack_share[rack] += p;
            // Leaf cache: each ToR caches the hottest keys homed in its
            // rack. Ranks arrive hottest-first, so a simple budget per
            // rack implements "the rack's top-K keys".
            if leaf_budget[rack] > 0 {
                leaf_budget[rack] -= 1;
                continue;
            }
            server_share[server] += p;
        }
        let max_server_share = server_share.iter().copied().fold(0.0, f64::max);
        let max_rack_share = rack_share.iter().copied().fold(0.0, f64::max);
        let server_bound = if max_server_share > 0.0 {
            c.server_rate / max_server_share
        } else {
            f64::INFINITY
        };
        let tor_bound = if max_rack_share > 0.0 {
            c.leaf_switch_rate / max_rack_share
        } else {
            f64::INFINITY
        };
        let bound = server_bound.min(tor_bound);
        if bound.is_infinite() {
            // Everything spine-cached: the spine layer scales with the
            // fabric; report the aggregate server capacity as the paper's
            // linear reference.
            return f64::from(servers) * c.server_rate;
        }
        bound
    }

    /// The throughput series over rack counts, for one scheme.
    pub fn series(&self, rack_counts: &[u32], scheme: ScaleOutScheme) -> Vec<f64> {
        rack_counts
            .iter()
            .map(|&r| self.throughput(r, scheme))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The deployed two-layer fabric.
// ---------------------------------------------------------------------------

/// One spine switch and its controller. The switch runs the same compiled
/// NetCache program as a ToR: ports `0..racks` are downlinks (one per
/// leaf rack, routed by the rack's aggregate IP), ports `racks..` are
/// client uplinks.
struct Spine {
    switch: NetCacheSwitch,
    controller: Controller,
}

/// Mutable routing state, behind one mutex: the spine layer, the
/// liveness flags and the power-of-two-choices window counters. The
/// deployment is single-threaded (virtual time); the mutex only provides
/// `&self` interior mutability for the client handles.
struct ScaleState {
    spines: Vec<Spine>,
    /// Per-rack network-partition flags ([`MultiRack::kill_rack`]).
    killed: Vec<bool>,
    /// Queries routed into each rack since the last controller cycle
    /// (the p2c decision window).
    tor_window: Vec<u64>,
    /// Queries processed by each spine switch since the last cycle.
    spine_window: Vec<u64>,
    /// Cumulative queries into each rack (every one crosses its ToR).
    tor_loads: Vec<u64>,
    /// Cumulative queries processed by each spine switch.
    spine_loads: Vec<u64>,
    /// Reads served by a spine cache (never reached a rack).
    spine_hits: u64,
    /// Reads of spine-cached keys routed to the leaf copy by p2c.
    leaf_bypass: u64,
    /// Packets dropped at a dead rack's boundary.
    dead_drops: u64,
}

/// The deployed multi-rack fabric: a spine cache layer over N in-process
/// leaf racks, with independent per-layer hashing and p2c read routing.
pub struct MultiRack {
    config: MultiRackConfig,
    /// Key → owning leaf rack (layer-A hash).
    rack_hash: Partitioner,
    /// Key → spine switch (layer-B hash, independent seed).
    spine_hash: Partitioner,
    racks: Vec<Rack>,
    state: Mutex<ScaleState>,
    client_epochs: AtomicU32,
    counters: ClientCounters,
    op_latency: ShardedHistogram,
}

impl MultiRack {
    /// Builds and populates the fabric: every leaf rack assembled exactly
    /// as a standalone [`crate::RackSim`] rack would be (same switch
    /// program, seeds derived per rack), the dataset hash-distributed
    /// over racks, leaf caches pre-filled with each rack's hottest owned
    /// keys and spine caches with the globally hottest keys.
    pub fn new(config: MultiRackConfig) -> Result<Self, RackError> {
        config.validate()?;
        let rack_hash = Partitioner::new(config.racks, config.rack_seed);
        let spine_hash = Partitioner::new(config.spines, config.spine_seed);
        let racks = (0..config.racks)
            .map(|r| Rack::new(Self::leaf_config(&config, r)))
            .collect::<Result<Vec<_>, _>>()?;

        // Dataset: global key ids distributed to their owning rack, then
        // placed exactly as `FabricCore::load_dataset` places them inside
        // one rack (home server plus chain replicas, version 1).
        let factor = config.replication_factor.max(1);
        for id in 0..config.num_keys {
            let key = Key::from_u64(id);
            let rack = &racks[rack_hash.partition_of(&key) as usize];
            let home = rack.addressing().home_of(&key);
            for server in rack.addressing().chain_servers(home.server, factor) {
                rack.server(server)
                    .store()
                    .put(key, Value::for_item(id, config.value_len), 1);
            }
        }

        let spines = if config.spine_cache_items == 0 {
            Vec::new()
        } else {
            (0..config.spines)
                .map(|s| Self::build_spine(&config, rack_hash, s))
                .collect()
        };
        let mr = MultiRack {
            rack_hash,
            spine_hash,
            racks,
            state: Mutex::new(ScaleState {
                spines,
                killed: vec![false; config.racks as usize],
                tor_window: vec![0; config.racks as usize],
                spine_window: vec![0; config.spines as usize],
                tor_loads: vec![0; config.racks as usize],
                spine_loads: vec![0; config.spines as usize],
                spine_hits: 0,
                leaf_bypass: 0,
                dead_drops: 0,
            }),
            client_epochs: AtomicU32::new(0),
            counters: ClientCounters::default(),
            op_latency: ShardedHistogram::new(),
            config,
        };
        mr.populate();
        Ok(mr)
    }

    /// The leaf rack configuration for rack `r`: byte-identical to what a
    /// standalone [`crate::RackSim`] with the same workload parameters
    /// assembles (this is what the 1-rack differential test pins), with
    /// per-rack derived seeds so racks do not mirror each other.
    fn leaf_config(c: &MultiRackConfig, r: u32) -> netcache::RackConfig {
        let sim = SimConfig {
            servers: c.servers_per_rack,
            num_keys: c.num_keys,
            value_len: c.value_len,
            theta: c.theta,
            cache_items: c.leaf_cache_items,
            partition_seed: c.partition_seed,
            hot_threshold: c.hot_threshold,
            sample_rate: c.sample_rate,
            replication_factor: c.replication_factor,
            seed: c.seed ^ (r as u64).wrapping_mul(GOLDEN),
            ..SimConfig::default()
        };
        let mut rc = rack_config_for(&sim, true);
        rc.clients = c.clients;
        rc.faults = FaultConfig {
            seed: c.faults.seed ^ (r as u64).wrapping_mul(GOLDEN),
            ..c.faults.clone()
        };
        rc
    }

    /// Builds spine `s`: the NetCache switch program with one downlink
    /// route per rack and one uplink route per client, plus a controller
    /// whose topology maps a key to its owning *rack* (the spine's
    /// "server" is a whole leaf rack).
    fn build_spine(c: &MultiRackConfig, rack_hash: Partitioner, s: u32) -> Spine {
        let per_spine = c.spine_cache_items.div_ceil(c.spines as usize);
        let mut sw = SwitchConfig::spine(c.racks as usize, c.clients as usize, per_spine);
        sw.hot_threshold = c.hot_threshold;
        sw.sample_rate = c.sample_rate;
        sw.seed = c.seed ^ 0x0073_7069_6e65 ^ (s as u64).wrapping_mul(GOLDEN);
        let mut switch = NetCacheSwitch::new(sw.clone()).expect("spine switch config is valid");
        for r in 0..c.racks {
            switch.add_route(SERVER_IP_BASE + r, 32, r as PortId);
        }
        for j in 0..c.clients {
            switch.add_route(Self::client_ip(j), 32, (c.racks + j) as PortId);
        }
        let controller = Controller::new(
            ControllerConfig {
                cache_capacity: per_spine,
                stats_reset_interval_ns: 1_000_000_000,
                seed: c.seed ^ 0x6370_6c61_6e65 ^ (s as u64).wrapping_mul(GOLDEN), // "cplane"
                ..ControllerConfig::default()
            },
            sw.pipes,
            sw.value_stages,
            sw.value_slots,
            move |key| Self::spine_home(&rack_hash, key),
        );
        Spine { switch, controller }
    }

    /// The spine-layer home of a key: its owning leaf rack, addressed by
    /// the rack's aggregate IP on the spine's downlink port for that rack.
    fn spine_home(rack_hash: &Partitioner, key: &Key) -> KeyHome {
        let rack = rack_hash.partition_of(key);
        KeyHome {
            server: rack,
            server_ip: SERVER_IP_BASE + rack,
            egress_port: rack as u16,
            pipe: 0,
        }
    }

    /// Client `j`'s IP, shared by every layer's routing tables.
    fn client_ip(j: u32) -> u32 {
        netcache::addressing::CLIENT_IP_BASE + j + 1
    }

    /// Pre-fills both cache layers, hottest-first (the static workload's
    /// rank order is the key-id order, as in [`crate::RackSim`]): each
    /// leaf caches the hottest keys *it owns*, each spine the globally
    /// hottest keys hashed to it.
    fn populate(&self) {
        let c = &self.config;
        if c.leaf_cache_items > 0 {
            let mut per_rack: Vec<Vec<Key>> = vec![Vec::new(); c.racks as usize];
            let mut remaining = c.racks as usize;
            for id in 0..c.num_keys {
                if remaining == 0 {
                    break;
                }
                let key = Key::from_u64(id);
                let r = self.rack_hash.partition_of(&key) as usize;
                if per_rack[r].len() < c.leaf_cache_items {
                    per_rack[r].push(key);
                    if per_rack[r].len() == c.leaf_cache_items {
                        remaining -= 1;
                    }
                }
            }
            for (r, keys) in per_rack.into_iter().enumerate() {
                self.racks[r].populate_cache(keys);
            }
        }
        let mut st = self.state.lock().expect("state mutex");
        let ScaleState { spines, killed, .. } = &mut *st;
        if !spines.is_empty() {
            let per_spine = c.spine_cache_items.div_ceil(c.spines as usize);
            let mut per: Vec<Vec<Key>> = vec![Vec::new(); spines.len()];
            let mut remaining = spines.len();
            for id in 0..c.num_keys {
                if remaining == 0 {
                    break;
                }
                let key = Key::from_u64(id);
                let s = self.spine_hash.partition_of(&key) as usize;
                if per[s].len() < per_spine {
                    per[s].push(key);
                    if per[s].len() == per_spine {
                        remaining -= 1;
                    }
                }
            }
            for (s, keys) in per.into_iter().enumerate() {
                let spine = &mut spines[s];
                let mut backend = SpineBackend {
                    racks: &self.racks,
                    killed,
                    released: Vec::new(),
                };
                spine
                    .controller
                    .populate(&mut spine.switch, &mut backend, keys);
                // Population happens before traffic: nothing is blocked,
                // so no released packets need re-injection.
                debug_assert!(backend.released.is_empty());
            }
        }
    }

    /// The configuration this fabric was built from.
    pub fn config(&self) -> &MultiRackConfig {
        &self.config
    }

    /// Number of leaf racks.
    pub fn racks(&self) -> u32 {
        self.config.racks
    }

    /// Direct access to leaf rack `r` (tests, reports).
    pub fn leaf(&self, r: u32) -> &Rack {
        &self.racks[r as usize]
    }

    /// The leaf rack owning `key` under the layer-A hash.
    pub fn rack_of(&self, key: &Key) -> u32 {
        self.rack_hash.partition_of(key)
    }

    /// The spine switch serving `key` under the layer-B hash.
    pub fn spine_of(&self, key: &Key) -> u32 {
        self.spine_hash.partition_of(key)
    }

    /// Whether `key` is currently in its spine switch's cache (the spine
    /// controller's view). Always false when the spine layer is disabled.
    pub fn spine_is_cached(&self, key: &Key) -> bool {
        let st = self.state.lock().expect("state mutex");
        if st.spines.is_empty() {
            return false;
        }
        st.spines[self.spine_of(key) as usize]
            .controller
            .is_cached(key)
    }

    /// Current fabric virtual time (all rack clocks advance in lockstep).
    pub fn now(&self) -> u64 {
        self.racks[0].now()
    }

    /// Advances every rack's virtual clock (dead racks' clocks too: a
    /// partitioned rack keeps running, it just cannot be reached).
    pub fn advance(&self, ns: u64) {
        for rack in &self.racks {
            rack.advance(ns);
        }
    }

    /// Drives retransmission timers and matured delayed traffic on every
    /// reachable rack; returns client-bound packets.
    pub fn tick(&self) -> Vec<(u32, Packet)> {
        let st = self.state.lock().expect("state mutex");
        let mut out = Vec::new();
        for (r, rack) in self.racks.iter().enumerate() {
            if st.killed[r] {
                continue;
            }
            out.extend(RackDrive::drive_tick(rack));
        }
        out
    }

    /// Partitions rack `r` from the fabric: every packet to or from it is
    /// dropped at the boundary. The rack's internal state (stores, switch
    /// cache, clocks) stays intact — this is a network/power-domain
    /// failure of a whole rack, not 128 disk losses. Valid spine entries
    /// for its keys keep serving reads §4.3-fresh; writes to it die
    /// unacknowledged, and the spine repair pass evicts entries it can no
    /// longer re-fetch.
    pub fn kill_rack(&self, r: u32) {
        self.state.lock().expect("state mutex").killed[r as usize] = true;
    }

    /// Reconnects rack `r`. Its state is exactly as the partition left it
    /// (unreachable-side writes were never applied anywhere).
    pub fn restart_rack(&self, r: u32) {
        self.state.lock().expect("state mutex").killed[r as usize] = false;
    }

    /// Whether rack `r` is currently partitioned off.
    pub fn is_killed(&self, r: u32) -> bool {
        self.state.lock().expect("state mutex").killed[r as usize]
    }

    /// Runs one control-plane cycle across the whole fabric: every
    /// reachable leaf rack's controller (heavy-hitter intake, repairs),
    /// then every spine controller against its own switch — the spine's
    /// sketch has been observing the global miss stream, so this is where
    /// cross-rack hot-key aggregation lands. Resets the p2c windows.
    /// Returns client-bound packets produced by writes the cycles
    /// released.
    pub fn run_controller(&self) -> Vec<(u32, Packet)> {
        let mut out = Vec::new();
        let mut st = self.state.lock().expect("state mutex");
        for (r, rack) in self.racks.iter().enumerate() {
            if st.killed[r] {
                continue;
            }
            out.extend(RackDrive::drive_controller(rack));
        }
        let now = self.now();
        let mut released = Vec::new();
        {
            let ScaleState { spines, killed, .. } = &mut *st;
            for spine in spines.iter_mut() {
                let mut backend = SpineBackend {
                    racks: &self.racks,
                    killed,
                    released: Vec::new(),
                };
                spine
                    .controller
                    .run_cycle(&mut spine.switch, &mut backend, now);
                released.append(&mut backend.released);
            }
        }
        // Writes released by spine-side unlocks re-enter their leaf
        // rack's network at the owning server's port.
        for (r, port, pkt) in released {
            if st.killed[r as usize] {
                st.dead_drops += 1;
                continue;
            }
            out.extend(RackDrive::inject(&self.racks[r as usize], pkt, port));
        }
        st.tor_window.fill(0);
        st.spine_window.fill(0);
        out
    }

    /// Fabric-wide client retry/stale/abandoned counters (retry-path
    /// clients only).
    pub fn client_counters(&self) -> &ClientCounters {
        &self.counters
    }

    /// A synchronous client handle on client attachment `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn client(&self, j: u32) -> MultiRackClient<'_> {
        assert!(j < self.config.clients, "client index out of range");
        let mut client = NetCacheClient::new(ClientConfig {
            client_id: (j + 1) as u8,
            ip: Self::client_ip(j),
            partitions: self.config.racks,
            partition_seed: self.config.rack_seed,
            server_ip_base: SERVER_IP_BASE,
        });
        let epoch = self.client_epochs.fetch_add(1, Ordering::Relaxed);
        client.start_seq_at(epoch.wrapping_shl(24) | 1);
        MultiRackClient {
            mr: self,
            index: j,
            client,
            policy: RetryPolicy::default(),
        }
    }

    /// Routes one client packet through the fabric and returns the
    /// replies destined for client `j`.
    ///
    /// Reads of spine-cached keys pick the less-loaded of the key's two
    /// cache copies (p2c between the owning leaf ToR and the spine);
    /// everything else — all writes, reads of uncached keys — crosses the
    /// key's spine switch, feeding its heavy-hitter sketch and keeping
    /// spine copies coherent on writes.
    pub fn route(&self, pkt: Packet, j: u32) -> Vec<Packet> {
        let mut st = self.state.lock().expect("state mutex");
        let key = pkt.netcache.key;
        let r = self.rack_hash.partition_of(&key);
        if st.spines.is_empty() {
            return self.deliver_to_rack(&mut st, r, pkt, j);
        }
        let s = self.spine_of(&key) as usize;
        if pkt.netcache.op == Op::Get && st.spines[s].controller.is_cached(&key) {
            // Two cached copies exist; power-of-two-choices between them.
            // The comparison is deliberately asymmetric: the leaf choice
            // costs a crossing of the key's home ToR, which carries *all*
            // of its rack's traffic, so the ToR window counts every
            // delivery; the spine choice costs one cache lookup on spine
            // `s`, so the spine window counts only queries the spine
            // cache serves — pass-through traffic rides the forwarding
            // pipeline and does not consume serving capacity. Counting
            // pass-through on the spine side would make every tail miss
            // inflate the spine window and steer hot reads back onto an
            // already-overloaded home ToR, which is exactly the hotspot
            // the spine layer exists to absorb.
            if st.tor_window[r as usize] < st.spine_window[s] {
                st.leaf_bypass += 1;
                return self.deliver_to_rack(&mut st, r, pkt, j);
            }
            st.spine_window[s] += 1;
        }
        st.spine_loads[s] += 1;
        let outs = st.spines[s]
            .switch
            .process(pkt, (self.config.racks + j) as PortId);
        let mut replies = Vec::new();
        for (port, mut out) in outs {
            if (port as u32) < self.config.racks {
                // Forwarded down to a leaf rack. The spine already
                // invalidated its own copy and rewrote the op to the
                // cached-write marker; the leaf must see the plain client
                // op so *its* copy is invalidated and its own §4.3 update
                // dance runs (the spine copy is repaired write-around by
                // the spine controller instead).
                match out.netcache.op {
                    Op::PutCached => out.netcache.op = Op::Put,
                    Op::DeleteCached => out.netcache.op = Op::Delete,
                    _ => {}
                }
                replies.extend(self.deliver_to_rack(&mut st, port as u32, out, j));
            } else {
                // Uplink: served by the spine cache.
                if out.netcache.op == Op::GetReplyHit {
                    st.spine_hits += 1;
                }
                replies.push(out);
            }
        }
        replies
    }

    /// Delivers one query into leaf rack `r` (the ToR crossing): rewrites
    /// the destination to the key's home server inside the rack — the
    /// only packet field the inter-rack layer addresses differently — and
    /// runs the rack's forwarding loop. Dead racks drop at the boundary.
    fn deliver_to_rack(&self, st: &mut ScaleState, r: u32, mut pkt: Packet, j: u32) -> Vec<Packet> {
        st.tor_window[r as usize] += 1;
        st.tor_loads[r as usize] += 1;
        if st.killed[r as usize] {
            st.dead_drops += 1;
            return Vec::new();
        }
        let rack = &self.racks[r as usize];
        let home = rack.addressing().home_of(&pkt.netcache.key);
        pkt.ipv4.dst = home.server_ip;
        let out = RackDrive::inject(rack, pkt, rack.addressing().client_port(j));
        out.into_iter()
            .filter_map(|(idx, p)| (idx == j).then_some(p))
            .collect()
    }

    /// Snapshot of the fabric's load distribution and routing counters.
    pub fn report(&self) -> MultiRackReport {
        let st = self.state.lock().expect("state mutex");
        let mut server_loads = Vec::new();
        let mut leaf_hits = 0;
        let mut leaf_cached = 0;
        for rack in &self.racks {
            for i in 0..self.config.servers_per_rack {
                let s = rack.server_stats(i);
                server_loads.push(s.gets + s.puts + s.deletes);
            }
            leaf_hits += rack.switch_stats().cache_hits;
            leaf_cached += rack.cached_keys();
        }
        let spine_cached = st
            .spines
            .iter()
            .map(|s| s.controller.cached_keys())
            .sum::<usize>();
        MultiRackReport {
            racks: self.config.racks,
            spines: st.spines.len() as u32,
            dead_racks: st.killed.iter().filter(|&&k| k).count() as u32,
            tor_loads: st.tor_loads.clone(),
            spine_loads: st.spine_loads.clone(),
            server_loads,
            spine_hits: st.spine_hits,
            leaf_hits,
            leaf_bypass: st.leaf_bypass,
            dead_drops: st.dead_drops,
            leaf_cached_keys: leaf_cached,
            spine_cached_keys: spine_cached,
            client_retries: self.counters.retries(),
            client_abandoned: self.counters.abandoned(),
        }
    }
}

impl core::fmt::Debug for MultiRack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MultiRack")
            .field("racks", &self.config.racks)
            .field("spines", &self.config.spines)
            .finish_non_exhaustive()
    }
}

/// The spine controller's view of the leaf racks: "fetch from the home
/// server" becomes "fetch from the key's home server inside its owning
/// rack", write locks land on the same leaf server agents the rack's own
/// controller uses, and a partitioned rack answers nothing (so the spine
/// repair pass evicts what it cannot re-fetch, and chain-style repair
/// sees the rack as dead).
struct SpineBackend<'a> {
    racks: &'a [Rack],
    killed: &'a [bool],
    /// Write packets released by unlocks: `(rack, ingress_port, packet)`,
    /// re-injected by the caller after the controller releases its locks.
    released: Vec<(u32, PortId, Packet)>,
}

impl SpineBackend<'_> {
    /// The leaf-rack-internal home of `key` within rack `home.server`,
    /// or `None` if that rack is partitioned off.
    fn inner_home(&self, home: &KeyHome, key: &Key) -> Option<(u32, KeyHome)> {
        let r = home.server;
        if self.killed[r as usize] {
            return None;
        }
        Some((r, self.racks[r as usize].addressing().home_of(key)))
    }
}

impl ServerBackend for SpineBackend<'_> {
    fn fetch(&mut self, home: &KeyHome, key: &Key) -> Option<(Value, u32)> {
        let (r, inner) = self.inner_home(home, key)?;
        self.racks[r as usize]
            .server(inner.server)
            .fetch(key)
            .map(|item| (item.value, item.version))
    }

    fn lock_writes(&mut self, home: &KeyHome, key: Key) {
        if let Some((r, inner)) = self.inner_home(home, &key) {
            self.racks[r as usize]
                .server(inner.server)
                .controller_lock(key);
        }
    }

    fn unlock_writes(&mut self, home: &KeyHome, key: Key) {
        if let Some((r, inner)) = self.inner_home(home, &key) {
            let rack = &self.racks[r as usize];
            let released = rack.server(inner.server).controller_unlock(key, rack.now());
            self.released
                .extend(released.into_iter().map(|p| (r, inner.egress_port, p)));
        }
    }

    // `mark_cached`/`unmark_cached` stay no-ops: the leaf agent's cached
    // mark drives *leaf-switch* data-plane updates; spine copies are
    // deliberately write-around (invalidated by the write in the spine's
    // data plane, refreshed by the spine controller's repair pass).

    fn is_alive(&mut self, server: u32) -> bool {
        !self.killed[server as usize]
    }
}

/// The inter-rack client attachment: transmitting routes the packet
/// through the spine layer and the leaf racks synchronously; waiting
/// advances the fabric clock and fires retransmission timers.
struct MultiRackLink<'a> {
    mr: &'a MultiRack,
    index: u32,
}

impl Link for MultiRackLink<'_> {
    fn transmit(&mut self, pkt: &Packet, replies: &mut Vec<Packet>) {
        replies.extend(self.mr.route(pkt.clone(), self.index));
    }

    fn wait(&mut self, timeout_ns: u64, _want_seq: u32, replies: &mut Vec<Packet>) {
        self.mr.advance(timeout_ns);
        replies.extend(
            self.mr
                .tick()
                .into_iter()
                .filter_map(|(j, pkt)| (j == self.index).then_some(pkt)),
        );
    }
}

/// A synchronous client handle over the whole fabric, mirroring
/// [`netcache::RackClient`]: builds a query, routes it through the
/// two-layer fabric, and returns the decoded reply.
pub struct MultiRackClient<'a> {
    mr: &'a MultiRack,
    index: u32,
    client: NetCacheClient,
    policy: RetryPolicy,
}

impl MultiRackClient<'_> {
    /// Sets the retransmission policy used by the `*_with_retry` methods.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn run(&mut self, pkt: Packet) -> Option<ClientResponse> {
        let replies = self.mr.route(pkt, self.index);
        replies
            .into_iter()
            .find_map(|p| Response::from_packet(&p).map(ClientResponse::new))
    }

    fn run_with_retry(&mut self, pkt: Packet) -> RetryOutcome {
        let mut link = MultiRackLink {
            mr: self.mr,
            index: self.index,
        };
        RequestEngine {
            policy: &self.policy,
            counters: &self.mr.counters,
            latency: &self.mr.op_latency,
        }
        .run(&mut link, pkt)
    }

    /// Reads `key`. `None` means the query (or its reply) was dropped.
    pub fn get(&mut self, key: Key) -> Option<ClientResponse> {
        let pkt = self.client.get(key);
        self.run(pkt)
    }

    /// Writes `value` under `key`.
    pub fn put(&mut self, key: Key, value: Value) -> Option<ClientResponse> {
        let pkt = self.client.put(key, value);
        self.run(pkt)
    }

    /// Deletes `key`.
    pub fn delete(&mut self, key: Key) -> Option<ClientResponse> {
        let pkt = self.client.delete(key);
        self.run(pkt)
    }

    /// Reads `key` under the retry policy.
    pub fn get_with_retry(&mut self, key: Key) -> RetryOutcome {
        let pkt = self.client.get(key);
        self.run_with_retry(pkt)
    }

    /// Writes `value` under `key` under the retry policy.
    pub fn put_with_retry(&mut self, key: Key, value: Value) -> RetryOutcome {
        let pkt = self.client.put(key, value);
        self.run_with_retry(pkt)
    }

    /// Deletes `key` under the retry policy.
    pub fn delete_with_retry(&mut self, key: Key) -> RetryOutcome {
        let pkt = self.client.delete(key);
        self.run_with_retry(pkt)
    }
}

/// Load-distribution snapshot of a deployed [`MultiRack`], the scale-out
/// analogue of [`netcache::RackReport`]. Serialized as
/// `netcache-multirack-report/v1`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRackReport {
    /// Leaf racks in the fabric.
    pub racks: u32,
    /// Spine switches (0 when the spine layer is disabled).
    pub spines: u32,
    /// Racks currently partitioned off.
    pub dead_racks: u32,
    /// Cumulative queries into each rack (every one crosses its ToR).
    pub tor_loads: Vec<u64>,
    /// Cumulative queries processed by each spine switch.
    pub spine_loads: Vec<u64>,
    /// Queries served by each server, flattened rack-major.
    pub server_loads: Vec<u64>,
    /// Reads served by a spine cache (never entered a rack).
    pub spine_hits: u64,
    /// Reads served by a leaf ToR cache.
    pub leaf_hits: u64,
    /// Reads of spine-cached keys that p2c routed to the leaf copy.
    pub leaf_bypass: u64,
    /// Packets dropped at a dead rack's boundary.
    pub dead_drops: u64,
    /// Keys cached across all leaf switches.
    pub leaf_cached_keys: usize,
    /// Keys cached across all spine switches.
    pub spine_cached_keys: usize,
    /// Client retransmissions (retry-path clients).
    pub client_retries: u64,
    /// Client requests abandoned after the retry budget.
    pub client_abandoned: u64,
}

impl MultiRackReport {
    /// Max-over-mean load imbalance across ToRs — the DistCache headline
    /// metric (1.0 = perfectly balanced; 0.0 when no load was routed).
    pub fn tor_imbalance(&self) -> f64 {
        netcache::metrics::load_imbalance_of(&self.tor_loads)
    }

    /// Max-over-mean load imbalance across spine switches.
    pub fn spine_imbalance(&self) -> f64 {
        netcache::metrics::load_imbalance_of(&self.spine_loads)
    }

    /// Max-over-mean load imbalance across all servers in the fabric.
    pub fn server_imbalance(&self) -> f64 {
        netcache::metrics::load_imbalance_of(&self.server_loads)
    }

    /// Renders the report as stable JSON (`netcache-multirack-report/v1`).
    pub fn to_json(&self) -> String {
        use netcache::json::fmt_f64;
        let nums = |v: &[u64]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            concat!(
                "{{\"schema\":\"netcache-multirack-report/v1\",",
                "\"racks\":{},\"spines\":{},\"dead_racks\":{},",
                "\"tor_loads\":[{}],\"tor_imbalance\":{},",
                "\"spine_loads\":[{}],\"spine_imbalance\":{},",
                "\"server_loads\":[{}],\"server_imbalance\":{},",
                "\"spine_hits\":{},\"leaf_hits\":{},\"leaf_bypass\":{},",
                "\"dead_drops\":{},\"leaf_cached_keys\":{},",
                "\"spine_cached_keys\":{},\"client_retries\":{},",
                "\"client_abandoned\":{}}}"
            ),
            self.racks,
            self.spines,
            self.dead_racks,
            nums(&self.tor_loads),
            fmt_f64(self.tor_imbalance()),
            nums(&self.spine_loads),
            fmt_f64(self.spine_imbalance()),
            nums(&self.server_loads),
            fmt_f64(self.server_imbalance()),
            self.spine_hits,
            self.leaf_hits,
            self.leaf_bypass,
            self.dead_drops,
            self.leaf_cached_keys,
            self.spine_cached_keys,
            self.client_retries,
            self.client_abandoned,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MultiRackModel {
        // Paper scale (128 servers/rack, 10 MQPS servers, 2 BQPS ToRs)
        // with a reduced keyspace to keep the O(num_keys) passes fast.
        MultiRackModel::new(MultiRackConfig {
            servers_per_rack: 128,
            num_keys: 200_000,
            leaf_cache_items: 1_000,
            spine_cache_items: 1_000,
            ..MultiRackConfig::default()
        })
        .expect("valid config")
    }

    #[test]
    fn nocache_does_not_scale() {
        let m = model();
        let t1 = m.throughput(1, ScaleOutScheme::NoCache);
        let t32 = m.throughput(32, ScaleOutScheme::NoCache);
        assert!(
            t32 < t1 * 4.0,
            "NoCache should stay near-flat: {t1:.3e} → {t32:.3e}"
        );
    }

    #[test]
    fn leaf_cache_scales_sublinearly() {
        let m = model();
        let t1 = m.throughput(1, ScaleOutScheme::LeafCache);
        let t32 = m.throughput(32, ScaleOutScheme::LeafCache);
        let scaling = t32 / t1;
        assert!(
            scaling > 1.1 && scaling < 24.0,
            "LeafCache scaling {scaling} should be limited by inter-rack imbalance"
        );
    }

    #[test]
    fn leaf_spine_scales_linearly() {
        let m = model();
        let t1 = m.throughput(1, ScaleOutScheme::LeafSpineCache);
        let t32 = m.throughput(32, ScaleOutScheme::LeafSpineCache);
        let scaling = t32 / t1;
        assert!(
            scaling > 16.0,
            "Leaf-Spine-Cache scaling {scaling} should be near-linear (32×)"
        );
    }

    #[test]
    fn ordering_matches_paper() {
        let m = model();
        for racks in [4u32, 16, 32] {
            let no = m.throughput(racks, ScaleOutScheme::NoCache);
            let leaf = m.throughput(racks, ScaleOutScheme::LeafCache);
            let spine = m.throughput(racks, ScaleOutScheme::LeafSpineCache);
            assert!(
                no < leaf && leaf <= spine,
                "racks {racks}: {no:.3e} / {leaf:.3e} / {spine:.3e}"
            );
        }
    }

    #[test]
    fn series_matches_pointwise() {
        let m = model();
        let series = m.series(&[1, 2, 4], ScaleOutScheme::LeafCache);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], m.throughput(1, ScaleOutScheme::LeafCache));
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        for broken in [
            MultiRackConfig {
                racks: 0,
                ..MultiRackConfig::default()
            },
            MultiRackConfig {
                spines: 0,
                ..MultiRackConfig::default()
            },
            MultiRackConfig {
                servers_per_rack: 0,
                ..MultiRackConfig::default()
            },
            MultiRackConfig {
                num_keys: 0,
                ..MultiRackConfig::default()
            },
            MultiRackConfig {
                leaf_cache_items: 0,
                spine_cache_items: 0,
                ..MultiRackConfig::default()
            },
            MultiRackConfig {
                theta: f64::NAN,
                ..MultiRackConfig::default()
            },
            MultiRackConfig {
                server_rate: 0.0,
                ..MultiRackConfig::default()
            },
            MultiRackConfig {
                value_len: 0,
                ..MultiRackConfig::default()
            },
        ] {
            match MultiRackModel::new(broken.clone()) {
                Err(RackError::InvalidConfig(_)) => {}
                other => panic!("expected InvalidConfig for {broken:?}, got {other:?}"),
            }
            assert!(MultiRack::new(broken).is_err());
        }
    }

    fn small_config() -> MultiRackConfig {
        MultiRackConfig {
            servers_per_rack: 4,
            num_keys: 400,
            leaf_cache_items: 16,
            spine_cache_items: 16,
            racks: 3,
            spines: 2,
            value_len: 32,
            ..MultiRackConfig::default()
        }
    }

    #[test]
    fn deployment_serves_reads_and_writes_everywhere() {
        let mr = MultiRack::new(small_config()).unwrap();
        let mut c = mr.client(0);
        for id in [0u64, 17, 133, 399] {
            let resp = c.get(Key::from_u64(id)).expect("reply");
            assert_eq!(resp.value().expect("value"), &Value::for_item(id, 32));
        }
        let k = Key::from_u64(42);
        let resp = c.put(k, Value::filled(0xaa, 32)).expect("ack");
        assert!(matches!(resp.response(), Response::PutAck { .. }));
        let resp = c.get(k).expect("reply");
        assert_eq!(resp.value().expect("value"), &Value::filled(0xaa, 32));
    }

    #[test]
    fn spine_serves_globally_hot_reads() {
        let mr = MultiRack::new(small_config()).unwrap();
        let mut c = mr.client(0);
        // Key 0 is globally hottest → populated in both layers. The first
        // read (fresh p2c windows: 0 < 0 is false) goes through the spine.
        assert!(mr.spine_is_cached(&Key::from_u64(0)));
        let resp = c.get(Key::from_u64(0)).expect("reply");
        assert!(resp.served_by_cache());
        assert!(mr.report().spine_hits >= 1);
    }

    #[test]
    fn p2c_splits_reads_between_the_two_copies() {
        let mr = MultiRack::new(small_config()).unwrap();
        let mut c = mr.client(0);
        for _ in 0..40 {
            c.get(Key::from_u64(0)).expect("reply");
        }
        let report = mr.report();
        assert!(report.spine_hits > 0, "{report:?}");
        assert!(report.leaf_bypass > 0, "{report:?}");
    }

    #[test]
    fn writes_keep_both_layers_fresh() {
        let mr = MultiRack::new(small_config()).unwrap();
        let k = Key::from_u64(0);
        let mut c = mr.client(0);
        c.put(k, Value::filled(0xbb, 32)).expect("ack");
        // The spine copy was invalidated by the write; until repaired,
        // reads fall through to the (coherent) leaf. Never stale:
        for _ in 0..8 {
            let resp = c.get(k).expect("reply");
            assert_eq!(resp.value().expect("value"), &Value::filled(0xbb, 32));
        }
        // The spine controller's repair pass refreshes its copy.
        mr.run_controller();
        let before = mr.report().spine_hits;
        let resp = c.get(k).expect("reply");
        assert!(resp.served_by_cache());
        assert_eq!(resp.value().expect("value"), &Value::filled(0xbb, 32));
        assert_eq!(mr.report().spine_hits, before + 1, "repair missed");
    }

    #[test]
    fn dead_rack_keeps_spine_cached_reads_alive() {
        let mr = MultiRack::new(small_config()).unwrap();
        let k = Key::from_u64(0);
        let victim = mr.rack_of(&k);
        mr.kill_rack(victim);
        let mut c = mr.client(0);
        // Spine copy still serves (fresh: nothing wrote it since).
        let resp = c.get(k).expect("spine must serve");
        assert!(resp.served_by_cache());
        // An uncached key of the dead rack is unreachable.
        let uncached = (0..mr.config().num_keys)
            .map(Key::from_u64)
            .find(|key| mr.rack_of(key) == victim && !mr.spine_is_cached(key))
            .expect("some uncached key in the victim rack");
        assert!(c.get(uncached).is_none());
        assert!(mr.report().dead_drops > 0);
        // Reconnect: everything serves again.
        mr.restart_rack(victim);
        assert!(c.get(uncached).is_some());
    }

    #[test]
    fn spine_layer_aggregates_hot_keys_across_racks() {
        // Start with an empty spine (capacity but no pre-population
        // overlap): hammer one tail key from the workload and check the
        // spine controller learns it from its own sketch.
        let mut config = small_config();
        config.hot_threshold = 8;
        let mr = MultiRack::new(config).unwrap();
        let hot = Key::from_u64(399); // cold enough to be uncached anywhere
        assert!(!mr.spine_is_cached(&hot));
        let mut c = mr.client(0);
        for _ in 0..60 {
            c.get(hot).expect("reply");
        }
        mr.advance(1_000_000);
        mr.run_controller();
        assert!(
            mr.spine_is_cached(&hot),
            "spine controller must learn the global heavy hitter"
        );
        let before = mr.report().spine_hits;
        assert!(c.get(hot).expect("reply").served_by_cache());
        assert_eq!(mr.report().spine_hits, before + 1);
    }

    #[test]
    fn report_json_is_schema_tagged() {
        let mr = MultiRack::new(small_config()).unwrap();
        let mut c = mr.client(0);
        c.get(Key::from_u64(1)).expect("reply");
        let json = mr.report().to_json();
        assert!(json.starts_with("{\"schema\":\"netcache-multirack-report/v1\""));
        netcache::Json::parse(&json).expect("well-formed JSON");
    }
}
