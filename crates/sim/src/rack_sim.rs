//! The rack-level discrete-event simulation.
//!
//! One logical client generates Poisson query traffic from a
//! [`QueryMix`] and adapts its rate to observed loss (§7.4). The switch is
//! the *real* [`netcache_dataplane`] program; servers are the real agents
//! behind rate-limited bounded queues; the controller is the real control
//! loop running on its own timer. Rates are scaled down from the paper's
//! hardware exactly like the paper's own 64-queue server emulation scaled
//! them — ratios, not absolute numbers, are the observable.

use netcache::addressing::Attachment;
use netcache::{
    FabricCore, FaultConfig, FaultStats, Histogram, NetworkModel, Rack, RackConfig, RackError,
    RackHandle,
};
use netcache_client::chunked;
use netcache_client::{NetCacheClient, RateController, Response};
use netcache_controller::ControllerConfig;
use netcache_dataplane::{PortId, SwitchConfig};
use netcache_proto::{Key, Op, Packet, Value};
use netcache_workload::{DynamicWorkload, QueryMix, SizeMix, WriteSkew};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

use crate::engine::EventQueue;

/// Fixed latency components (nanoseconds), calibrated so the absolute
/// numbers land near the paper's: 7 µs for a cache hit (client-dominated),
/// ~15 µs for a server round trip at low load.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Client-side processing per query (both directions combined).
    pub client_overhead_ns: u64,
    /// One link traversal.
    pub hop_ns: u64,
    /// Switch pipeline traversal.
    pub switch_ns: u64,
    /// Server-side I/O overhead per query (NIC + shim), on top of the
    /// rate-derived service time.
    pub server_overhead_ns: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            client_overhead_ns: 6_000,
            hop_ns: 250,
            switch_ns: 400,
            server_overhead_ns: 2_000,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Storage servers (partitions).
    pub servers: u32,
    /// Distinct keys in the workload.
    pub num_keys: u64,
    /// How many of the hottest key ids to actually load into the stores
    /// (`None` = all). Large keyspaces only need their head resident: tail
    /// misses are served as not-found at identical cost, exactly like the
    /// paper's hash-partitioned store serving an arbitrary keyspace.
    pub loaded_keys: Option<u64>,
    /// Aggregate client sending capacity, QPS (`None` = unbounded). The
    /// paper's testbed was bounded by its clients' NICs at ≈2 BQPS; the
    /// rate controller never exceeds this cap.
    pub client_cap_qps: Option<f64>,
    /// Value size in bytes (≤ [`netcache_proto::MAX_VALUE_LEN`]). Sizes
    /// beyond one pipeline pass's worth (128 B) are cached as multi-pass
    /// entries and each switch traversal is charged one pipeline slot per
    /// recirculation pass.
    pub value_len: usize,
    /// Optional value-size mixture: when set, each key's logical payload
    /// length comes from this deterministic key → size-class assignment
    /// instead of the uniform `value_len`. Sizes up to
    /// [`netcache_proto::MAX_VALUE_LEN`] are single items; larger sizes
    /// use the §2 chunked layout, and one logical query fans out into one
    /// packet per chunk (manifest first, continuations after it arrives —
    /// the same order a real chunked reader issues them in). The report's
    /// [`SimReport::size_classes`] breaks goodput and hit ratio down per
    /// class.
    pub size_mix: Option<SizeMix>,
    /// Zipf skew of reads (0 = uniform).
    pub theta: f64,
    /// Fraction of writes.
    pub write_ratio: f64,
    /// Write key distribution.
    pub write_skew: WriteSkew,
    /// Cache size in items (0 disables caching: the NoCache baseline).
    pub cache_items: usize,
    /// Seed of the rack's hash partitioner.
    pub partition_seed: u64,
    /// Per-server service rate, queries/second (scaled-down stand-in for
    /// the paper's 10 MQPS servers).
    pub server_rate_qps: u64,
    /// Per-server queue capacity (jobs); beyond this, drops.
    pub queue_capacity: usize,
    /// Simulated duration in seconds (after warmup).
    pub duration_s: f64,
    /// Warmup before measurement starts, seconds.
    pub warmup_s: f64,
    /// Initial client offered rate, queries/second.
    pub initial_rate_qps: f64,
    /// If set, the client sends at this fixed rate (no loss adaptation);
    /// used for latency-vs-throughput curves.
    pub fixed_rate_qps: Option<f64>,
    /// Rate-adaptation interval, milliseconds.
    pub rate_interval_ms: u64,
    /// Controller cycle interval, milliseconds.
    pub controller_interval_ms: u64,
    /// Optional dynamic workload: the change and its period in seconds.
    pub dynamics: Option<(DynamicWorkload, f64)>,
    /// Heavy-hitter threshold for the switch statistics.
    pub hot_threshold: u16,
    /// Statistics sampling rate.
    pub sample_rate: f64,
    /// Latency model constants.
    pub latency: LatencyModel,
    /// Collect per-query latency samples (every delivered reply is
    /// recorded into a fixed-memory [`Histogram`]).
    pub collect_latency: bool,
    /// Network fault model applied on every simulated link crossing
    /// (loss, duplication, reordering, bounded delay). Defaults to a
    /// perfect network.
    pub faults: FaultConfig,
    /// Replicas per partition (chain replication; 1 = unreplicated).
    pub replication_factor: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            servers: 128,
            num_keys: 100_000,
            loaded_keys: None,
            client_cap_qps: None,
            value_len: 128,
            size_mix: None,
            theta: 0.99,
            write_ratio: 0.0,
            write_skew: WriteSkew::Uniform,
            cache_items: 10_000,
            partition_seed: 0x7061_7274,
            server_rate_qps: 2_000,
            queue_capacity: 64,
            duration_s: 2.0,
            warmup_s: 1.0,
            initial_rate_qps: 50_000.0,
            fixed_rate_qps: None,
            rate_interval_ms: 100,
            controller_interval_ms: 100,
            dynamics: None,
            hot_threshold: 64,
            sample_rate: 1.0,
            latency: LatencyModel::default(),
            collect_latency: false,
            faults: FaultConfig::default(),
            replication_factor: 1,
            seed: 0x5eed,
        }
    }
}

/// Per-second time series entry (Fig. 11 plots these).
#[derive(Debug, Clone, Copy, Default)]
pub struct SecondStats {
    /// Queries offered by the client.
    pub offered: u64,
    /// Replies delivered to the client.
    pub delivered: u64,
    /// Replies served by the switch cache.
    pub cache_hits: u64,
    /// Queries dropped at server queues.
    pub drops: u64,
}

/// Latency summary over sampled queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Mean, nanoseconds.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Number of samples.
    pub samples: usize,
}

impl LatencyStats {
    /// Summarizes a latency [`Histogram`] (all zeros when empty).
    pub fn from_histogram(h: &Histogram) -> Self {
        if h.is_empty() {
            return LatencyStats::default();
        }
        LatencyStats {
            mean_ns: h.mean(),
            p50_ns: h.p50(),
            p90_ns: h.p90(),
            p99_ns: h.p99(),
            p999_ns: h.p999(),
            samples: h.count() as usize,
        }
    }
}

impl SimReport {
    /// Max-over-mean imbalance of the per-server delivered load (1.0 =
    /// perfectly balanced, 0.0 when no server served anything).
    pub fn load_imbalance(&self) -> f64 {
        if self.per_server_qps.is_empty() {
            return 0.0;
        }
        let total: f64 = self.per_server_qps.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mean = total / self.per_server_qps.len() as f64;
        let max = self.per_server_qps.iter().cloned().fold(0.0, f64::max);
        max / mean
    }

    /// Renders the per-second series as CSV (`second,offered,delivered,
    /// cache_hits,drops`), ready for external plotting of the Fig. 11
    /// time series.
    pub fn per_second_csv(&self) -> String {
        let mut out = String::from("second,offered,delivered,cache_hits,drops\n");
        for (i, s) in self.per_second.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                i, s.offered, s.delivered, s.cache_hits, s.drops
            ));
        }
        out
    }

    /// Renders the headline numbers as one CSV row (`goodput_qps,
    /// offered_qps,cache_qps,server_qps,hit_ratio,drops`).
    pub fn summary_csv_row(&self) -> String {
        format!(
            "{:.1},{:.1},{:.1},{:.1},{:.4},{}",
            self.goodput_qps,
            self.offered_qps,
            self.cache_qps,
            self.server_qps,
            self.hit_ratio,
            self.drops
        )
    }
}

/// Per-size-class results of a size-mixed run (see [`SimConfig::size_mix`]).
///
/// Counters are in *logical* operations: a chunked query counts once, and
/// counts as a cache hit only when every constituent chunk was served by
/// the switch.
#[derive(Debug, Clone, Copy)]
pub struct ClassStats {
    /// Logical payload length of this class, bytes.
    pub value_len: usize,
    /// Logical operations offered during measurement.
    pub offered: u64,
    /// Logical operations fully delivered during measurement.
    pub delivered: u64,
    /// Delivered operations served entirely by the switch cache.
    pub hits: u64,
    /// Delivered logical operations per second.
    pub goodput_qps: f64,
    /// `hits / delivered` (0 when nothing was delivered).
    pub hit_ratio: f64,
}

/// Simulation results.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Average goodput over the measurement window, queries/second.
    pub goodput_qps: f64,
    /// Average offered rate over the measurement window.
    pub offered_qps: f64,
    /// Goodput served by the switch cache.
    pub cache_qps: f64,
    /// Goodput served by storage servers.
    pub server_qps: f64,
    /// Cache hit ratio among delivered reads.
    pub hit_ratio: f64,
    /// Total drops during measurement.
    pub drops: u64,
    /// Per-server delivered queries/second (Fig. 10(b)).
    pub per_server_qps: Vec<f64>,
    /// Latency summary (if collection was enabled).
    pub latency: LatencyStats,
    /// Full latency distribution (virtual time, ns; empty unless
    /// `collect_latency` was set).
    pub latency_hist: Histogram,
    /// Per-second series (Fig. 11).
    pub per_second: Vec<SecondStats>,
    /// Faults injected by the network model over the whole run.
    pub faults: FaultStats,
    /// Per-size-class breakdown (empty unless [`SimConfig::size_mix`]
    /// was set).
    pub size_classes: Vec<ClassStats>,
}

enum Event {
    /// The client emits its next query.
    ClientSend,
    /// A server finishes servicing a query.
    ServerComplete {
        server: u32,
        pkt: Packet,
        enqueued_at: u64,
    },
    /// A reply reaches the client.
    ClientRecv {
        seq: u32,
        from_cache: bool,
        not_found: bool,
    },
    /// Periodic rate adaptation + bookkeeping.
    Interval,
    /// Periodic controller cycle.
    ControllerCycle,
    /// Periodic agent retransmission timers.
    AgentTick,
    /// Periodic dynamic-workload change.
    WorkloadChange,
    /// One-shot agent-timer tick used by scripted runs (never
    /// reschedules itself, so [`RackSim::run_script`] can drain the
    /// queue to empty).
    ScriptTick,
}

/// One step of a scripted workload, used by the cross-transport
/// differential tests: the same script run on the in-process `Rack` and
/// on [`RackSim::run_script`] must produce identical logical outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Read key id.
    Get(u64),
    /// Write key id with a value filled with the given byte.
    Put(u64, u8),
    /// Delete key id.
    Delete(u64),
    /// Run one controller cycle.
    Controller,
    /// Advance virtual time (drives agent retransmission timers).
    AdvanceMs(u64),
}

/// The rack configuration a [`SimConfig`] maps onto: the real switch
/// program, partitioning and controller settings the simulator drives.
///
/// Public so the cross-transport differential tests can build an
/// in-process [`Rack`] that is assembled *identically* to the simulated
/// one (same switch seed, same partitioning, same cache sizing).
pub fn rack_config_for(config: &SimConfig, dataplane_updates: bool) -> RackConfig {
    let mut switch = SwitchConfig::prototype();
    switch.ports = (config.servers + 8) as usize;
    // Size the value arrays to the experiment: enough slots for the
    // target cache size, 8 stages as in the prototype.
    switch.value_slots = config.cache_items.max(1024).next_power_of_two();
    switch.cache_capacity = switch.value_slots;
    switch.hot_threshold = config.hot_threshold;
    switch.sample_rate = config.sample_rate;
    switch.seed = config.seed ^ 0x5717c4;

    RackConfig {
        servers: config.servers,
        shards_per_server: 1,
        switch,
        controller: ControllerConfig {
            cache_capacity: config.cache_items,
            stats_reset_interval_ns: 1_000_000_000,
            ..ControllerConfig::default()
        },
        clients: 1,
        replication_factor: config.replication_factor,
        partition_seed: config.partition_seed,
        agent_retry_timeout_ns: 200_000,
        dataplane_updates,
        // The sim routes every packet through its own latency-modelled
        // links, so the rack-internal fault model stays off and the
        // sim applies `config.faults` itself in `dispatch`.
        faults: FaultConfig::default(),
    }
}

/// The simulator.
pub struct RackSim {
    config: SimConfig,
    rack: Rack,
    mix: QueryMix,
    client: NetCacheClient,
    client_port: PortId,
    // Scripted mode (see `run_script`): when set, replies delivered to
    // the client are also captured whole for decoding.
    capture_replies: bool,
    script_replies: Vec<Packet>,
    rng: StdRng,
    faults: NetworkModel,
    queue: EventQueue<Event>,
    rate: RateController,
    // Server state.
    server_free_at: Vec<u64>,
    server_pending: Vec<usize>,
    server_served: Vec<u64>,
    service_ns: u64,
    // Client accounting.
    in_flight: HashMap<u32, Flight>,
    // Logical chunked operations in flight (size-mixed workloads): one
    // entry per multi-packet query, plus the packet → operation index.
    large_ops: HashMap<u64, LargeOp>,
    seq_to_op: HashMap<u32, u64>,
    next_op_id: u64,
    class_stats: Vec<ClassCounters>,
    interval_sent: u64,
    interval_recv: u64,
    // Measurement.
    warmup_end_ns: u64,
    end_ns: u64,
    current_second: SecondStats,
    second_boundary_ns: u64,
    per_second: Vec<SecondStats>,
    delivered: u64,
    delivered_hits: u64,
    offered: u64,
    drops: u64,
    latencies: Histogram,
}

/// One single-packet query in flight.
#[derive(Debug, Clone, Copy)]
struct Flight {
    sent_at: u64,
    class: u8,
}

/// One logical chunked query in flight (size classes beyond
/// [`netcache_proto::MAX_VALUE_LEN`]).
#[derive(Debug, Clone, Copy)]
struct LargeOp {
    started_at: u64,
    base_id: u64,
    total_len: usize,
    class: u8,
    /// Constituent packets still outstanding.
    remaining: u32,
    /// Every reply so far was served by the switch cache.
    all_hits: bool,
    /// Read whose manifest has not arrived yet (continuation reads are
    /// issued once it does).
    awaiting_manifest: bool,
}

/// Per-size-class counters accumulated during measurement.
#[derive(Debug, Clone, Copy, Default)]
struct ClassCounters {
    offered: u64,
    delivered: u64,
    hits: u64,
}

impl RackSim {
    /// Builds the simulator (rack constructed, dataset loaded, cache
    /// pre-populated with the hottest `cache_items` keys).
    pub fn new(config: SimConfig) -> Result<Self, RackError> {
        Self::with_dataplane_updates(config, true)
    }

    /// Like [`RackSim::new`] but selecting the write-around ablation when
    /// `dataplane_updates` is `false` (§4.3: servers do not push values to
    /// the switch; the controller's repair pass refreshes invalid entries).
    pub fn with_dataplane_updates(
        config: SimConfig,
        dataplane_updates: bool,
    ) -> Result<Self, RackError> {
        if let Some(mix) = &config.size_mix {
            for class in mix.classes() {
                assert!(
                    class.value_len <= chunked::MAX_LARGE_LEN,
                    "size-mix class of {} bytes exceeds the chunked cap of {} bytes",
                    class.value_len,
                    chunked::MAX_LARGE_LEN
                );
            }
        }
        let rack = Rack::new(rack_config_for(&config, dataplane_updates))?;
        let loaded = config
            .loaded_keys
            .map_or(config.num_keys, |k| k.min(config.num_keys));
        match &config.size_mix {
            None => rack.load_dataset(loaded, config.value_len),
            Some(mix) => rack.fabric().load_dataset_with(loaded, |id| mix.len_of(id)),
        }

        let mix = QueryMix::new(
            config.num_keys,
            config.theta,
            config.write_ratio,
            config.write_skew,
        );
        if config.cache_items > 0 {
            let hottest: Vec<Key> = mix
                .popularity()
                .hottest(config.cache_items)
                .iter()
                .map(|&id| Key::from_u64(id))
                .collect();
            rack.populate_cache(hottest);
        }
        let client = rack.fabric().make_client(0);
        let client_port = rack.addressing().client_port(0);
        let service_ns = 1_000_000_000 / config.server_rate_qps;
        let initial = config.fixed_rate_qps.unwrap_or(config.initial_rate_qps);
        let cap = config.client_cap_qps.unwrap_or(1e9);
        let rate = RateController::new(initial.max(10.0).min(cap), 10.0, cap);
        let warmup_end_ns = (config.warmup_s * 1e9) as u64;
        let end_ns = warmup_end_ns + (config.duration_s * 1e9) as u64;
        Ok(RackSim {
            rng: StdRng::seed_from_u64(config.seed),
            faults: NetworkModel::new(config.faults.clone()),
            mix,
            client,
            client_port,
            capture_replies: false,
            script_replies: Vec::new(),
            queue: EventQueue::new(),
            rate,
            server_free_at: vec![0; config.servers as usize],
            server_pending: vec![0; config.servers as usize],
            server_served: vec![0; config.servers as usize],
            service_ns,
            in_flight: HashMap::new(),
            large_ops: HashMap::new(),
            seq_to_op: HashMap::new(),
            next_op_id: 0,
            class_stats: vec![
                ClassCounters::default();
                config.size_mix.as_ref().map_or(1, |m| m.classes().len())
            ],
            interval_sent: 0,
            interval_recv: 0,
            warmup_end_ns,
            end_ns,
            current_second: SecondStats::default(),
            second_boundary_ns: 1_000_000_000,
            per_second: Vec::new(),
            delivered: 0,
            delivered_hits: 0,
            offered: 0,
            drops: 0,
            latencies: Histogram::new(),
            rack,
            config,
        })
    }

    /// Access to the underlying rack (inspection in tests).
    pub fn rack(&self) -> &Rack {
        &self.rack
    }

    /// Runs a deterministic scripted workload through the full simulated
    /// data path (real switch, latency-modelled links, rate-limited
    /// servers), one operation at a time, returning the decoded reply of
    /// each data operation. The cross-transport differential tests run
    /// the same script on the in-process [`Rack`] and assert identical
    /// logical outcomes.
    pub fn run_script(&mut self, ops: &[ScriptOp]) -> Vec<Option<Response>> {
        self.capture_replies = true;
        let mut results = Vec::new();
        for op in ops {
            match *op {
                ScriptOp::Get(id) => {
                    let pkt = self.client.get(Key::from_u64(id));
                    results.push(self.script_request(pkt));
                }
                ScriptOp::Put(id, fill) => {
                    let value = Value::filled(fill, self.config.value_len);
                    let pkt = self.client.put(Key::from_u64(id), value);
                    results.push(self.script_request(pkt));
                }
                ScriptOp::Delete(id) => {
                    let pkt = self.client.delete(Key::from_u64(id));
                    results.push(self.script_request(pkt));
                }
                ScriptOp::Controller => {
                    let now = self.queue.now();
                    self.controller_cycle_at(now);
                    self.drain();
                }
                ScriptOp::AdvanceMs(ms) => {
                    let target = self.queue.now() + ms * 1_000_000;
                    self.queue.schedule(target, Event::ScriptTick);
                    self.drain();
                }
            }
        }
        self.capture_replies = false;
        results
    }

    /// Injects one client packet at the switch, drains the event queue to
    /// quiescence, and decodes the reply matching the request's sequence
    /// number (retransmission-free: scripts run over a perfect network).
    fn script_request(&mut self, pkt: Packet) -> Option<Response> {
        let seq = pkt.netcache.seq;
        self.script_replies.clear();
        let now = self.queue.now();
        let (switch_ns, outs) = self.switch_process(pkt, self.client_port);
        self.dispatch(now + self.config.latency.hop_ns + switch_ns, outs);
        self.drain();
        let reply = self.script_replies.iter().find(|p| p.netcache.seq == seq)?;
        Response::from_packet(reply)
    }

    /// Processes one packet through the real switch, charging one
    /// `switch_ns` pipeline slot per pass the touched key's cached value
    /// occupies: a recirculated multi-pass entry holds the pipeline for
    /// proportionally longer in the event queue, so large cached values
    /// are not simulated as free.
    fn switch_process(&mut self, pkt: Packet, port: PortId) -> (u64, Vec<(PortId, Packet)>) {
        let key = pkt.netcache.key;
        let (passes, outs) = self.rack.with_switch(|sw| {
            let passes = sw.passes_for(&key);
            (passes, sw.process(pkt, port))
        });
        (self.config.latency.switch_ns * u64::from(passes), outs)
    }

    /// Runs the event queue dry (scripted mode only: no periodic events
    /// reschedule themselves, so quiescence is reached).
    fn drain(&mut self) {
        while let Some((now, event)) = self.queue.pop() {
            self.handle(now, event);
        }
    }

    fn exp_interarrival_ns(&mut self, rate_qps: f64) -> u64 {
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        ((-u.ln()) / rate_qps * 1e9) as u64 + 1
    }

    /// Runs the simulation to completion and reports.
    pub fn run(mut self) -> SimReport {
        let interval_ns = self.config.rate_interval_ms * 1_000_000;
        let controller_ns = self.config.controller_interval_ms * 1_000_000;
        self.queue.schedule(0, Event::ClientSend);
        self.queue.schedule(interval_ns, Event::Interval);
        self.queue.schedule(controller_ns, Event::ControllerCycle);
        self.queue.schedule(1_000_000, Event::AgentTick);
        if let Some((_, period_s)) = self.config.dynamics {
            self.queue
                .schedule((period_s * 1e9) as u64, Event::WorkloadChange);
        }
        while let Some((now, event)) = self.queue.pop() {
            if now >= self.end_ns {
                break;
            }
            self.handle(now, event);
        }
        self.finish()
    }

    fn measuring(&self, now: u64) -> bool {
        now >= self.warmup_end_ns
    }

    fn handle(&mut self, now: u64, event: Event) {
        match event {
            Event::ClientSend => self.on_client_send(now),
            Event::ServerComplete {
                server,
                pkt,
                enqueued_at,
            } => self.on_server_complete(now, server, pkt, enqueued_at),
            Event::ClientRecv {
                seq,
                from_cache,
                not_found,
            } => self.on_client_recv(now, seq, from_cache, not_found),
            Event::Interval => self.on_interval(now),
            Event::ControllerCycle => self.on_controller(now),
            Event::AgentTick => self.on_agent_tick(now),
            Event::WorkloadChange => self.on_workload_change(now),
            Event::ScriptTick => self.tick_agents(now),
        }
    }

    /// The class index and logical payload length assigned to a key.
    fn size_of(&self, id: u64) -> (u8, usize) {
        match &self.config.size_mix {
            None => (0, self.config.value_len),
            Some(mix) => {
                let class = mix.class_of(id);
                (class as u8, mix.classes()[class].value_len)
            }
        }
    }

    /// Injects one client packet at the switch.
    fn send_packet(&mut self, now: u64, pkt: Packet) {
        let (switch_ns, outs) = self.switch_process(pkt, self.client_port);
        self.dispatch(now + self.config.latency.hop_ns + switch_ns, outs);
    }

    fn on_client_send(&mut self, now: u64) {
        // Schedule the next arrival first (open loop).
        let next = now + self.exp_interarrival_ns(self.rate.rate());
        self.queue.schedule(next, Event::ClientSend);

        let query = self.mix.sample(&mut self.rng);
        let id = query.key_id();
        let (class, len) = self.size_of(id);
        self.interval_sent += 1;
        if self.measuring(now) {
            self.offered += 1;
            self.current_second.offered += 1;
            self.class_stats[class as usize].offered += 1;
        }
        if len > netcache_proto::MAX_VALUE_LEN {
            self.send_chunked(now, id, len, class, query.is_write());
            return;
        }
        let key = Key::from_u64(id);
        let pkt = match query {
            netcache_workload::QueryKind::Get(_) => self.client.get(key),
            netcache_workload::QueryKind::Put(id) => self.client.put(key, Value::for_item(id, len)),
        };
        self.in_flight.insert(
            pkt.netcache.seq,
            Flight {
                sent_at: now,
                class,
            },
        );
        self.send_packet(now, pkt);
    }

    /// Issues one logical query of a key whose payload spans multiple
    /// chunked items. A write stores every chunk (continuations first,
    /// manifest last — the ordering `put_large` uses); a read fetches the
    /// manifest and fans out to the continuations once it arrives. The
    /// operation completes — one delivered logical query — when the last
    /// constituent reply reaches the client.
    fn send_chunked(&mut self, now: u64, id: u64, len: usize, class: u8, is_write: bool) {
        let op_id = self.next_op_id;
        self.next_op_id += 1;
        let base = Key::from_u64(id);
        let mut op = LargeOp {
            started_at: now,
            base_id: id,
            total_len: len,
            class,
            remaining: 1,
            all_hits: !is_write,
            awaiting_manifest: !is_write,
        };
        if is_write {
            let chunks = chunked::split(&netcache_proto::item_bytes(id, len))
                .expect("size-mix lengths are validated against the chunking cap");
            op.remaining = chunks.len() as u32;
            self.large_ops.insert(op_id, op);
            for (index, value) in chunks {
                let pkt = self.client.put(chunked::chunk_key(base, index), value);
                self.seq_to_op.insert(pkt.netcache.seq, op_id);
                self.send_packet(now, pkt);
            }
        } else {
            self.large_ops.insert(op_id, op);
            let pkt = self.client.get(base);
            self.seq_to_op.insert(pkt.netcache.seq, op_id);
            self.send_packet(now, pkt);
        }
    }

    /// Passes one packet through the fault model for a link crossing,
    /// returning the surviving copies and their departure times.
    fn link(&mut self, pkt: Packet, now: u64) -> Vec<(u64, Packet)> {
        let mut deliveries = Vec::new();
        self.faults.transmit(pkt, now, &mut deliveries);
        deliveries
            .into_iter()
            .map(|d| (d.deliver_at_ns, d.pkt))
            .collect()
    }

    /// Routes switch outputs to their attached nodes with latency, applying
    /// the fault model per link crossing.
    fn dispatch(&mut self, now: u64, outs: Vec<(PortId, Packet)>) {
        for (port, pkt) in outs {
            match self.rack.addressing().attachment(port) {
                Attachment::Client(_) => {
                    for (at, pkt) in self.link(pkt, now) {
                        let from_cache = pkt.netcache.op == Op::GetReplyHit;
                        let not_found = pkt.netcache.op == Op::GetReplyNotFound;
                        self.queue.schedule(
                            at + self.config.latency.hop_ns,
                            Event::ClientRecv {
                                seq: pkt.netcache.seq,
                                from_cache,
                                not_found,
                            },
                        );
                        if self.capture_replies {
                            self.script_replies.push(pkt);
                        }
                    }
                }
                Attachment::Server(i) => {
                    for (at, pkt) in self.link(pkt, now) {
                        self.deliver_to_server(at, i, pkt);
                    }
                }
                Attachment::Unused => {}
            }
        }
    }

    fn deliver_to_server(&mut self, now: u64, server: u32, pkt: Packet) {
        let s = server as usize;
        let arrival = now + self.config.latency.hop_ns;
        match pkt.netcache.op {
            // Queries contend for the server's service capacity.
            Op::Get
            | Op::Put
            | Op::PutCached
            | Op::Delete
            | Op::DeleteCached
            | Op::ChainPut
            | Op::ChainDelete => {
                if self.server_pending[s] >= self.config.queue_capacity {
                    if self.measuring(now) {
                        self.drops += 1;
                        self.current_second.drops += 1;
                    }
                    return;
                }
                self.server_pending[s] += 1;
                let start = self.server_free_at[s].max(arrival);
                // The server is busy for one service time; the I/O
                // overhead adds pipeline latency without occupying the
                // core (DPDK-style overlapped I/O).
                self.server_free_at[s] = start + self.service_ns;
                let finish = start + self.service_ns + self.config.latency.server_overhead_ns;
                self.queue.schedule(
                    finish,
                    Event::ServerComplete {
                        server,
                        pkt,
                        enqueued_at: arrival,
                    },
                );
            }
            // Acks and stray packets are handled by the shim's I/O path
            // without consuming KV service capacity.
            _ => {
                let outs = self.rack.server(server).handle_packet(pkt, arrival);
                self.forward_from_server(arrival, server, outs);
            }
        }
    }

    fn forward_from_server(&mut self, now: u64, server: u32, outs: Vec<Packet>) {
        let port = self.rack.addressing().server_port(server);
        for pkt in outs {
            // Server → switch is a link crossing of its own; copies that
            // survive it traverse the switch at their (possibly delayed)
            // arrival time.
            for (at, pkt) in self.link(pkt, now) {
                let (switch_ns, outs) = self.switch_process(pkt, port);
                self.dispatch(at + self.config.latency.hop_ns + switch_ns, outs);
            }
        }
    }

    fn on_server_complete(&mut self, now: u64, server: u32, pkt: Packet, _enqueued_at: u64) {
        let s = server as usize;
        self.server_pending[s] -= 1;
        if self.measuring(now) {
            self.server_served[s] += 1;
        }
        let outs = self.rack.server(server).handle_packet(pkt, now);
        self.forward_from_server(now, server, outs);
    }

    fn on_client_recv(&mut self, now: u64, seq: u32, from_cache: bool, not_found: bool) {
        if let Some(op_id) = self.seq_to_op.remove(&seq) {
            self.on_chunk_recv(now, op_id, from_cache, not_found);
            return;
        }
        self.interval_recv += 1;
        let flight = self.in_flight.remove(&seq);
        if self.measuring(now) {
            self.delivered += 1;
            self.current_second.delivered += 1;
            if from_cache {
                self.delivered_hits += 1;
                self.current_second.cache_hits += 1;
            }
            if let Some(f) = flight {
                let c = &mut self.class_stats[f.class as usize];
                c.delivered += 1;
                c.hits += u64::from(from_cache);
            }
            if self.config.collect_latency {
                if let Some(f) = flight {
                    self.latencies
                        .record(now - f.sent_at + self.config.latency.client_overhead_ns);
                }
            }
        }
    }

    /// One constituent reply of a logical chunked operation.
    fn on_chunk_recv(&mut self, now: u64, op_id: u64, from_cache: bool, not_found: bool) {
        let Some(op) = self.large_ops.get_mut(&op_id) else {
            // The operation aged out of the in-flight table (a lost
            // constituent); late stragglers are dropped on the floor.
            return;
        };
        op.all_hits &= from_cache;
        op.remaining -= 1;
        if op.awaiting_manifest && !not_found {
            // The manifest arrived: fan out the continuation reads. (A
            // not-found manifest ends the operation — the key holds no
            // chunked item, exactly like a plain miss.)
            op.awaiting_manifest = false;
            let count = chunked::chunk_count(op.total_len);
            op.remaining = count - 1;
            let base_id = op.base_id;
            for index in 1..count {
                let pkt = self
                    .client
                    .get(chunked::chunk_key(Key::from_u64(base_id), index));
                self.seq_to_op.insert(pkt.netcache.seq, op_id);
                self.send_packet(now, pkt);
            }
            return;
        }
        if op.remaining > 0 {
            return;
        }
        let op = self.large_ops.remove(&op_id).expect("operation present");
        self.interval_recv += 1;
        if self.measuring(now) {
            self.delivered += 1;
            self.current_second.delivered += 1;
            let c = &mut self.class_stats[op.class as usize];
            c.delivered += 1;
            if op.all_hits {
                self.delivered_hits += 1;
                self.current_second.cache_hits += 1;
                c.hits += 1;
            }
            if self.config.collect_latency {
                self.latencies
                    .record(now - op.started_at + self.config.latency.client_overhead_ns);
            }
        }
    }

    fn on_interval(&mut self, now: u64) {
        let interval_ns = self.config.rate_interval_ms * 1_000_000;
        self.queue.schedule(now + interval_ns, Event::Interval);
        if self.config.fixed_rate_qps.is_none() {
            self.rate
                .on_interval(self.interval_sent, self.interval_recv);
        }
        self.interval_sent = 0;
        self.interval_recv = 0;
        // In-flight entries older than a second are lost queries.
        self.in_flight
            .retain(|_, f| now - f.sent_at < 1_000_000_000);
        self.large_ops
            .retain(|_, op| now - op.started_at < 1_000_000_000);
        let live_ops = &self.large_ops;
        self.seq_to_op.retain(|_, op| live_ops.contains_key(op));
        // Per-second rollover.
        if now >= self.second_boundary_ns {
            if self.measuring(now) {
                self.per_second.push(self.current_second);
            }
            self.current_second = SecondStats::default();
            self.second_boundary_ns += 1_000_000_000;
        }
    }

    fn on_controller(&mut self, now: u64) {
        let controller_ns = self.config.controller_interval_ms * 1_000_000;
        self.queue
            .schedule(now + controller_ns, Event::ControllerCycle);
        self.controller_cycle_at(now);
    }

    /// One controller cycle against the real switch and servers, run by
    /// the shared fabric core; packets the agents release (write
    /// unblocking after cache insertion) re-enter the simulated network
    /// at the owning server's link.
    fn controller_cycle_at(&mut self, now: u64) {
        let released = self.rack.fabric().run_controller_cycle(now);
        for (port, pkt) in released {
            if let Attachment::Server(i) = self.rack.addressing().attachment(port) {
                self.forward_from_server(now, i, vec![pkt]);
            }
        }
    }

    fn on_agent_tick(&mut self, now: u64) {
        self.queue.schedule(now + 1_000_000, Event::AgentTick);
        self.tick_agents(now);
    }

    fn tick_agents(&mut self, now: u64) {
        for i in 0..self.config.servers {
            let outs = self.rack.server(i).tick(now);
            if !outs.is_empty() {
                self.forward_from_server(now, i, outs);
            }
        }
    }

    fn on_workload_change(&mut self, now: u64) {
        if let Some((change, period_s)) = self.config.dynamics {
            self.queue
                .schedule(now + (period_s * 1e9) as u64, Event::WorkloadChange);
            self.mix.popularity_mut().apply(change, &mut self.rng);
        }
    }

    fn finish(mut self) -> SimReport {
        if self.current_second.offered > 0 {
            self.per_second.push(self.current_second);
        }
        let window_s = self.config.duration_s;
        let goodput = self.delivered as f64 / window_s;
        let cache_qps = self.delivered_hits as f64 / window_s;
        let latency = LatencyStats::from_histogram(&self.latencies);
        SimReport {
            goodput_qps: goodput,
            offered_qps: self.offered as f64 / window_s,
            cache_qps,
            server_qps: goodput - cache_qps,
            hit_ratio: if self.delivered > 0 {
                self.delivered_hits as f64 / self.delivered as f64
            } else {
                0.0
            },
            drops: self.drops,
            per_server_qps: self
                .server_served
                .iter()
                .map(|&c| c as f64 / window_s)
                .collect(),
            latency,
            latency_hist: self.latencies,
            per_second: self.per_second,
            faults: self.faults.stats(),
            size_classes: match &self.config.size_mix {
                None => Vec::new(),
                Some(mix) => mix
                    .classes()
                    .iter()
                    .zip(&self.class_stats)
                    .map(|(class, c)| ClassStats {
                        value_len: class.value_len,
                        offered: c.offered,
                        delivered: c.delivered,
                        hits: c.hits,
                        goodput_qps: c.delivered as f64 / window_s,
                        hit_ratio: if c.delivered > 0 {
                            c.hits as f64 / c.delivered as f64
                        } else {
                            0.0
                        },
                    })
                    .collect(),
            },
        }
    }
}

impl RackHandle for RackSim {
    fn fabric(&self) -> &FabricCore {
        self.rack.fabric()
    }

    fn populate_cache(&self, keys: Vec<Key>) -> usize {
        RackHandle::populate_cache(&self.rack, keys)
    }
}

/// Large values (§2) through the full simulated data path: each
/// constituent item is one scripted request over the latency-modelled
/// links and rate-limited servers. Shared chunking/reassembly logic in
/// [`netcache::LargeValueOps`] keeps the simulator byte-compatible with
/// the in-process and UDP transports.
impl netcache::LargeValueOps for RackSim {
    fn kv_get(&mut self, key: Key) -> Option<netcache::ClientResponse> {
        let pkt = self.client.get(key);
        let prev = self.capture_replies;
        self.capture_replies = true;
        let resp = self.script_request(pkt);
        self.capture_replies = prev;
        resp.map(netcache::ClientResponse::new)
    }

    fn kv_put(&mut self, key: Key, value: Value) -> Option<netcache::ClientResponse> {
        let pkt = self.client.put(key, value);
        let prev = self.capture_replies;
        self.capture_replies = true;
        let resp = self.script_request(pkt);
        self.capture_replies = prev;
        resp.map(netcache::ClientResponse::new)
    }
}

/// The simulator can also be driven packet-at-a-time through the fabric
/// contract (composition layers bypass the Poisson event loop and talk
/// to the underlying rack directly, like the in-process deployment).
impl netcache::RackDrive for RackSim {
    fn inject(&self, pkt: Packet, in_port: PortId) -> Vec<(u32, Packet)> {
        netcache::RackDrive::inject(&self.rack, pkt, in_port)
    }

    fn now_ns(&self) -> u64 {
        netcache::RackDrive::now_ns(&self.rack)
    }

    fn advance_ns(&self, ns: u64) {
        netcache::RackDrive::advance_ns(&self.rack, ns)
    }

    fn drive_tick(&self) -> Vec<(u32, Packet)> {
        netcache::RackDrive::drive_tick(&self.rack)
    }

    fn drive_controller(&self) -> Vec<(u32, Packet)> {
        netcache::RackDrive::drive_controller(&self.rack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> SimConfig {
        SimConfig {
            servers: 8,
            num_keys: 5_000,
            value_len: 64,
            server_rate_qps: 1_000,
            cache_items: 100,
            duration_s: 1.0,
            warmup_s: 0.5,
            initial_rate_qps: 2_000.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn uniform_nocache_reaches_near_aggregate() {
        let report = RackSim::new(SimConfig {
            theta: 0.0,
            cache_items: 0,
            // Start above capacity so the controller only has to back off.
            initial_rate_qps: 12_000.0,
            duration_s: 1.5,
            warmup_s: 1.0,
            ..base_config()
        })
        .unwrap()
        .run();
        // 8 servers × 1000 QPS = 8000 QPS aggregate; uniform load should
        // reach a large fraction of it.
        assert!(
            report.goodput_qps > 5_000.0,
            "goodput {} too low",
            report.goodput_qps
        );
        assert_eq!(report.cache_qps, 0.0);
    }

    #[test]
    fn skewed_nocache_collapses() {
        let uniform = RackSim::new(SimConfig {
            theta: 0.0,
            cache_items: 0,
            ..base_config()
        })
        .unwrap()
        .run();
        let skewed = RackSim::new(SimConfig {
            theta: 0.99,
            cache_items: 0,
            ..base_config()
        })
        .unwrap()
        .run();
        assert!(
            skewed.goodput_qps < uniform.goodput_qps * 0.75,
            "skew should hurt NoCache: {} vs {}",
            skewed.goodput_qps,
            uniform.goodput_qps
        );
    }

    #[test]
    fn cache_recovers_skewed_throughput() {
        let nocache = RackSim::new(SimConfig {
            theta: 0.99,
            cache_items: 0,
            ..base_config()
        })
        .unwrap()
        .run();
        let netcache = RackSim::new(SimConfig {
            theta: 0.99,
            cache_items: 100,
            initial_rate_qps: 10_000.0,
            ..base_config()
        })
        .unwrap()
        .run();
        assert!(
            netcache.goodput_qps > nocache.goodput_qps * 1.5,
            "cache should lift throughput: {} vs {}",
            netcache.goodput_qps,
            nocache.goodput_qps
        );
        assert!(netcache.hit_ratio > 0.3, "hit ratio {}", netcache.hit_ratio);
    }

    #[test]
    fn latency_flat_below_saturation() {
        let report = RackSim::new(SimConfig {
            theta: 0.0,
            cache_items: 0,
            fixed_rate_qps: Some(2_000.0),
            collect_latency: true,
            ..base_config()
        })
        .unwrap()
        .run();
        assert!(report.latency.samples > 10);
        // Near-idle: latency ≈ overhead + hops + service (1 ms service at
        // 1000 QPS scaled servers).
        assert!(
            report.latency.mean_ns < 3_000_000.0,
            "mean {}",
            report.latency.mean_ns
        );
    }

    #[test]
    fn csv_renderings_are_well_formed() {
        let report = RackSim::new(SimConfig {
            duration_s: 1.0,
            warmup_s: 0.0,
            ..base_config()
        })
        .unwrap()
        .run();
        let csv = report.per_second_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("second,offered,delivered,cache_hits,drops")
        );
        for line in lines {
            assert_eq!(line.split(',').count(), 5, "bad row: {line}");
        }
        assert_eq!(report.summary_csv_row().split(',').count(), 6);
    }

    #[test]
    fn lossy_network_degrades_but_does_not_kill_goodput() {
        let clean = RackSim::new(base_config()).unwrap().run();
        let lossy = RackSim::new(SimConfig {
            faults: FaultConfig {
                loss: 0.05,
                duplicate: 0.02,
                reorder: 0.02,
                max_delay_ns: 50_000,
                seed: 0xc4a05,
            },
            ..base_config()
        })
        .unwrap()
        .run();
        assert_eq!(clean.faults, FaultStats::default());
        assert!(lossy.faults.dropped > 0, "{:?}", lossy.faults);
        assert!(lossy.faults.duplicated > 0, "{:?}", lossy.faults);
        assert!(
            lossy.goodput_qps > 0.0 && lossy.goodput_qps < clean.offered_qps,
            "lossy {} vs clean {}",
            lossy.goodput_qps,
            clean.offered_qps
        );
    }

    #[test]
    fn per_second_series_collected() {
        let report = RackSim::new(SimConfig {
            duration_s: 2.0,
            warmup_s: 0.0,
            ..base_config()
        })
        .unwrap()
        .run();
        assert!(report.per_second.len() >= 2, "{}", report.per_second.len());
    }
}
