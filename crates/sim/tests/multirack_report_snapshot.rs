//! Golden snapshot of [`MultiRackReport::to_json`]: pins the
//! `netcache-multirack-report/v1` schema byte for byte, so any field
//! rename, reorder, or format change is a deliberate, reviewed schema
//! bump — the scale-out bench scenarios and external plotting scripts
//! parse this output.
//!
//! The report is hand-built (live captures embed seed-dependent load
//! counts and would drift with any routing change); the values are
//! arbitrary but distinct, so a swapped pair of fields cannot cancel
//! out, and the load vectors are chosen so every imbalance renders as an
//! exact short decimal.

use netcache::json::Json;
use netcache_sim::MultiRackReport;

/// A fully deterministic report with every field populated.
fn sample_report() -> MultiRackReport {
    MultiRackReport {
        racks: 4,
        spines: 2,
        dead_racks: 1,
        // mean 100, max 140 -> tor_imbalance 1.4
        tor_loads: vec![100, 140, 90, 70],
        // mean 40, max 60 -> spine_imbalance 1.5
        spine_loads: vec![60, 20],
        // mean 30, max 60 -> server_imbalance 2.0
        server_loads: vec![30, 10, 25, 35, 45, 15, 20, 60],
        spine_hits: 180,
        leaf_hits: 75,
        leaf_bypass: 33,
        dead_drops: 12,
        leaf_cached_keys: 48,
        spine_cached_keys: 16,
        client_retries: 21,
        client_abandoned: 3,
    }
}

const GOLDEN: &str = "{\"schema\":\"netcache-multirack-report/v1\",\
                      \"racks\":4,\"spines\":2,\"dead_racks\":1,\
                      \"tor_loads\":[100,140,90,70],\"tor_imbalance\":1.4,\
                      \"spine_loads\":[60,20],\"spine_imbalance\":1.5,\
                      \"server_loads\":[30,10,25,35,45,15,20,60],\
                      \"server_imbalance\":2.0,\
                      \"spine_hits\":180,\"leaf_hits\":75,\"leaf_bypass\":33,\
                      \"dead_drops\":12,\"leaf_cached_keys\":48,\
                      \"spine_cached_keys\":16,\"client_retries\":21,\
                      \"client_abandoned\":3}";

#[test]
fn multirack_report_json_matches_golden_snapshot() {
    assert_eq!(sample_report().to_json(), GOLDEN);
}

#[test]
fn golden_snapshot_is_valid_json_with_the_expected_fields() {
    let json = Json::parse(GOLDEN).expect("golden snapshot parses");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("netcache-multirack-report/v1")
    );
    assert_eq!(json.get("racks").and_then(Json::as_f64), Some(4.0));
    assert_eq!(json.get("tor_imbalance").and_then(Json::as_f64), Some(1.4));
    assert_eq!(
        json.get("spine_imbalance").and_then(Json::as_f64),
        Some(1.5)
    );
    assert_eq!(
        json.get("server_imbalance").and_then(Json::as_f64),
        Some(2.0)
    );
    let tor = json
        .get("tor_loads")
        .and_then(Json::as_array)
        .expect("array");
    assert_eq!(tor.len(), 4);
    assert_eq!(
        json.get("client_abandoned").and_then(Json::as_f64),
        Some(3.0)
    );
}

/// Degenerate vectors must not divide by zero when rendered.
#[test]
fn empty_and_zero_load_reports_render_cleanly() {
    let report = MultiRackReport {
        racks: 1,
        spines: 0,
        dead_racks: 0,
        tor_loads: vec![0],
        spine_loads: vec![],
        server_loads: vec![0, 0],
        spine_hits: 0,
        leaf_hits: 0,
        leaf_bypass: 0,
        dead_drops: 0,
        leaf_cached_keys: 0,
        spine_cached_keys: 0,
        client_retries: 0,
        client_abandoned: 0,
    };
    assert_eq!(report.tor_imbalance(), 0.0);
    assert_eq!(report.spine_imbalance(), 0.0);
    let json = report.to_json();
    assert!(Json::parse(&json).is_ok(), "unparseable: {json}");
    assert!(
        json.contains("\"spine_loads\":[]"),
        "bad empty array: {json}"
    );
}
