//! Partitioned Bloom filter (§4.4.3).
//!
//! "We add a Bloom filter after the Count-Min sketch, so that each uncached
//! hot key would only be reported to the controller once." The prototype
//! uses 3 register arrays of 256K 1-bit slots — i.e. a *partitioned* Bloom
//! filter: one hash function per array, each array its own partition. That
//! is the layout a match-action pipeline forces (one register array access
//! per stage), and this module reproduces it exactly.

use crate::HashFamily;

/// A partitioned Bloom filter with one hash function per partition.
///
/// # Examples
///
/// ```
/// use netcache_sketch::BloomFilter;
///
/// let mut bf = BloomFilter::new(3, 1024, 99);
/// assert!(!bf.contains(b"k"));
/// assert!(bf.insert(b"k"));   // newly inserted
/// assert!(!bf.insert(b"k"));  // duplicate
/// assert!(bf.contains(b"k"));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    partitions: usize,
    bits_per_partition: usize,
    words: Vec<Box<[u64]>>,
    hashes: HashFamily,
}

impl BloomFilter {
    /// Prototype partition count (3 register arrays).
    pub const DEFAULT_PARTITIONS: usize = 3;

    /// Prototype bits per partition (256K 1-bit slots).
    pub const DEFAULT_BITS: usize = 262_144;

    /// Creates a filter with `partitions` arrays of `bits_per_partition`
    /// bits each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(partitions: usize, bits_per_partition: usize, seed: u64) -> Self {
        assert!(partitions > 0, "partition count must be positive");
        assert!(bits_per_partition > 0, "partition size must be positive");
        let words_per = bits_per_partition.div_ceil(64);
        BloomFilter {
            partitions,
            bits_per_partition,
            words: (0..partitions)
                .map(|_| vec![0u64; words_per].into_boxed_slice())
                .collect(),
            hashes: HashFamily::new(seed, partitions),
        }
    }

    /// Creates a filter with the prototype's dimensions (3 × 256K bits).
    pub fn prototype(seed: u64) -> Self {
        Self::new(Self::DEFAULT_PARTITIONS, Self::DEFAULT_BITS, seed)
    }

    /// Total memory in bytes (for the resource report).
    pub fn memory_bytes(&self) -> usize {
        self.partitions * self.bits_per_partition.div_ceil(64) * 8
    }

    /// Inserts `key`; returns `true` if at least one bit was newly set
    /// (i.e. the key was definitely not present before).
    ///
    /// The switch uses this return value as "first report": a `false`
    /// means the key (or a colliding one) was already reported.
    pub fn insert(&mut self, key: &[u8]) -> bool {
        let mut newly_set = false;
        for p in 0..self.partitions {
            let bit = self.hashes.index(p, key, self.bits_per_partition);
            let (word, mask) = (bit / 64, 1u64 << (bit % 64));
            if self.words[p][word] & mask == 0 {
                self.words[p][word] |= mask;
                newly_set = true;
            }
        }
        newly_set
    }

    /// Whether `key` may have been inserted. `false` is definitive
    /// (no false negatives); `true` may be a false positive.
    pub fn contains(&self, key: &[u8]) -> bool {
        (0..self.partitions).all(|p| {
            let bit = self.hashes.index(p, key, self.bits_per_partition);
            self.words[p][bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Clears all bits (the controller's periodic statistics reset).
    pub fn clear(&mut self) {
        for partition in &mut self.words {
            partition.fill(0);
        }
    }

    /// The bit index `key` maps to in partition `p` — exposed so the
    /// register-array implementation in the data plane uses identical
    /// placement.
    pub fn bit(&self, p: usize, key: &[u8]) -> usize {
        self.hashes.index(p, key, self.bits_per_partition)
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Bits per partition.
    pub fn bits_per_partition(&self) -> usize {
        self.bits_per_partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> [u8; 8] {
        i.to_be_bytes()
    }

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(3, 4096, 1);
        for i in 0..200u64 {
            bf.insert(&key(i));
        }
        for i in 0..200u64 {
            assert!(bf.contains(&key(i)), "false negative for {i}");
        }
    }

    #[test]
    fn insert_reports_first_occurrence() {
        let mut bf = BloomFilter::new(3, 65_536, 2);
        assert!(bf.insert(b"a"));
        assert!(!bf.insert(b"a"));
        assert!(bf.insert(b"b"));
    }

    #[test]
    fn false_positive_rate_is_low_at_prototype_scale() {
        let mut bf = BloomFilter::prototype(3);
        // The paper expects at most tens of thousands of hot-key reports
        // per statistics epoch; insert 10K.
        for i in 0..10_000u64 {
            bf.insert(&key(i));
        }
        let mut fp = 0usize;
        for i in 10_000..110_000u64 {
            if bf.contains(&key(i)) {
                fp += 1;
            }
        }
        // Expected FP rate ≈ (10_000/262_144)^3 ≈ 5.6e-5 → ≈5.6 in 100K.
        assert!(fp < 60, "false positive count too high: {fp}");
    }

    #[test]
    fn clear_resets() {
        let mut bf = BloomFilter::new(3, 1024, 4);
        bf.insert(b"x");
        bf.clear();
        assert!(!bf.contains(b"x"));
        assert!(bf.insert(b"x"));
    }

    #[test]
    fn memory_matches_prototype_claim() {
        // 3 arrays × 256K bits = 96 KiB.
        let bf = BloomFilter::prototype(0);
        assert_eq!(bf.memory_bytes(), 3 * 262_144 / 8);
    }

    #[test]
    fn non_multiple_of_64_bits_work() {
        let mut bf = BloomFilter::new(2, 100, 5);
        for i in 0..50u64 {
            bf.insert(&key(i));
            assert!(bf.contains(&key(i)));
        }
    }
}
