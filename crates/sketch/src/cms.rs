//! Count-Min sketch (§4.4.3).
//!
//! "The Count-Min sketch component consists of four register arrays. It maps
//! a query to different locations in these arrays by hashing the key with
//! four independent hash functions. It increases the values in those
//! locations by one, uses the smallest value among the four as the key's
//! approximate query frequency, and marks it as hot if the frequency is
//! above the threshold configured by the controller."
//!
//! Counters are 16-bit and saturate rather than wrap: an overflowing hot
//! counter must stay hot until the controller resets the sketch.

use crate::HashFamily;

/// A Count-Min sketch with 16-bit saturating counters.
///
/// # Examples
///
/// ```
/// use netcache_sketch::CountMinSketch;
///
/// let mut cms = CountMinSketch::new(4, 1024, 7);
/// for _ in 0..10 {
///     cms.increment(b"hot-key");
/// }
/// assert!(cms.estimate(b"hot-key") >= 10); // never underestimates
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    depth: usize,
    width: usize,
    rows: Vec<Box<[u16]>>,
    hashes: HashFamily,
}

impl CountMinSketch {
    /// Default depth used by the prototype (4 register arrays).
    pub const DEFAULT_DEPTH: usize = 4;

    /// Default width used by the prototype (64K slots per array).
    pub const DEFAULT_WIDTH: usize = 65_536;

    /// Creates a sketch with `depth` rows of `width` counters each.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `width` is zero.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth > 0, "sketch depth must be positive");
        assert!(width > 0, "sketch width must be positive");
        CountMinSketch {
            depth,
            width,
            rows: (0..depth)
                .map(|_| vec![0u16; width].into_boxed_slice())
                .collect(),
            hashes: HashFamily::new(seed, depth),
        }
    }

    /// Creates a sketch with the prototype's dimensions (4 × 64K).
    pub fn prototype(seed: u64) -> Self {
        Self::new(Self::DEFAULT_DEPTH, Self::DEFAULT_WIDTH, seed)
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Slots per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total memory in bytes (for the resource report).
    pub fn memory_bytes(&self) -> usize {
        self.depth * self.width * core::mem::size_of::<u16>()
    }

    /// Increments the counters for `key` and returns the new estimate
    /// (the minimum over rows, computed in the same pass as on the switch).
    pub fn increment(&mut self, key: &[u8]) -> u16 {
        let mut min = u16::MAX;
        for (row_idx, row) in self.rows.iter_mut().enumerate() {
            let slot = self.hashes.index(row_idx, key, self.width);
            row[slot] = row[slot].saturating_add(1);
            min = min.min(row[slot]);
        }
        min
    }

    /// Returns the approximate frequency of `key` without modifying it.
    ///
    /// Count-Min guarantees `estimate(k) >= true_count(k)` (no
    /// underestimation), with overestimation bounded by collisions.
    pub fn estimate(&self, key: &[u8]) -> u16 {
        let mut min = u16::MAX;
        for (row_idx, row) in self.rows.iter().enumerate() {
            let slot = self.hashes.index(row_idx, key, self.width);
            min = min.min(row[slot]);
        }
        min
    }

    /// Clears all counters (the controller's periodic statistics reset).
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.fill(0);
        }
    }

    /// Read-only access to a row, for the data-plane equivalence tests.
    pub fn row(&self, i: usize) -> &[u16] {
        &self.rows[i]
    }

    /// The slot index function `key` maps to in row `i` — exposed so the
    /// register-array implementation in the data plane can use identical
    /// placement.
    pub fn slot(&self, i: usize, key: &[u8]) -> usize {
        self.hashes.index(i, key, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> [u8; 8] {
        i.to_be_bytes()
    }

    #[test]
    fn never_underestimates() {
        let mut cms = CountMinSketch::new(4, 256, 1);
        let mut truth = std::collections::HashMap::new();
        // Heavy collisions on purpose (small width, many keys).
        for i in 0..500u64 {
            let k = key(i % 50);
            cms.increment(&k);
            *truth.entry(i % 50).or_insert(0u16) += 1;
        }
        for (k, &count) in &truth {
            assert!(cms.estimate(&key(*k)) >= count, "key {k}");
        }
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut cms = CountMinSketch::new(4, 65_536, 2);
        for _ in 0..37 {
            cms.increment(b"only-key");
        }
        assert_eq!(cms.estimate(b"only-key"), 37);
        assert_eq!(cms.estimate(b"other-key"), 0);
    }

    #[test]
    fn increment_returns_estimate() {
        let mut cms = CountMinSketch::new(4, 1024, 3);
        for expect in 1..=20u16 {
            assert_eq!(cms.increment(b"k"), expect);
        }
    }

    #[test]
    fn clear_resets_all() {
        let mut cms = CountMinSketch::new(2, 64, 4);
        for i in 0..100u64 {
            cms.increment(&key(i));
        }
        cms.clear();
        for i in 0..100u64 {
            assert_eq!(cms.estimate(&key(i)), 0);
        }
    }

    #[test]
    fn counters_saturate_not_wrap() {
        let mut cms = CountMinSketch::new(1, 1, 5);
        for _ in 0..70_000u32 {
            cms.increment(b"x");
        }
        assert_eq!(cms.estimate(b"x"), u16::MAX);
    }

    #[test]
    fn memory_matches_prototype_claim() {
        // 4 arrays × 64K × 16-bit = 512 KiB.
        let cms = CountMinSketch::prototype(0);
        assert_eq!(cms.memory_bytes(), 4 * 65_536 * 2);
    }

    #[test]
    fn overestimate_bounded_with_prototype_width() {
        // With width 64K and a few thousand distinct keys, the typical
        // overestimate should be tiny.
        let mut cms = CountMinSketch::new(4, 65_536, 6);
        for i in 0..5_000u64 {
            cms.increment(&key(i));
        }
        let mut over = 0usize;
        for i in 0..5_000u64 {
            if cms.estimate(&key(i)) > 1 {
                over += 1;
            }
        }
        assert!(over < 50, "too many overestimates: {over}");
    }
}
