//! Per-key hit counters for cached items (§4.4.3).
//!
//! "The per-key counter is just a single register array. Each cached key is
//! mapped to a counter index given by the lookup table. A cache hit simply
//! increases the counter value of the cached key-value item in the
//! corresponding slot by one."
//!
//! Counters are 16-bit (the sampler in front keeps them from overflowing)
//! and saturate defensively.

/// A register array of 16-bit saturating hit counters, indexed by the
/// per-key `key_index` assigned by the cache lookup table.
#[derive(Debug, Clone)]
pub struct CounterArray {
    slots: Box<[u16]>,
}

impl CounterArray {
    /// Creates an array of `size` zeroed counters.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "counter array must be non-empty");
        CounterArray {
            slots: vec![0u16; size].into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the array is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Memory in bytes (for the resource report).
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * core::mem::size_of::<u16>()
    }

    /// Increments the counter at `index`, saturating; returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds — the lookup table only hands out
    /// indexes it owns, so an out-of-range index is a controller bug.
    pub fn increment(&mut self, index: usize) -> u16 {
        let slot = &mut self.slots[index];
        *slot = slot.saturating_add(1);
        *slot
    }

    /// Reads the counter at `index`.
    pub fn get(&self, index: usize) -> u16 {
        self.slots[index]
    }

    /// Zeroes the counter at `index` (done when a new key takes the slot).
    pub fn reset(&mut self, index: usize) {
        self.slots[index] = 0;
    }

    /// Zeroes every counter (periodic statistics reset).
    pub fn clear(&mut self) {
        self.slots.fill(0);
    }

    /// Iterates `(index, count)` pairs — the controller uses this to sample
    /// candidate victims for eviction.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u16)> + '_ {
        self.slots.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_and_get() {
        let mut c = CounterArray::new(8);
        assert_eq!(c.increment(3), 1);
        assert_eq!(c.increment(3), 2);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn reset_single_slot() {
        let mut c = CounterArray::new(4);
        c.increment(1);
        c.increment(2);
        c.reset(1);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(2), 1);
    }

    #[test]
    fn clear_all() {
        let mut c = CounterArray::new(4);
        for i in 0..4 {
            c.increment(i);
        }
        c.clear();
        assert!(c.iter().all(|(_, v)| v == 0));
    }

    #[test]
    fn saturates_at_max() {
        let mut c = CounterArray::new(1);
        for _ in 0..70_000u32 {
            c.increment(0);
        }
        assert_eq!(c.get(0), u16::MAX);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_panics() {
        let mut c = CounterArray::new(2);
        c.increment(2);
    }
}
