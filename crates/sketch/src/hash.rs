//! Seeded tabulation hashing.
//!
//! Tofino's hash engines compute hashes by "random XORing of bits of the key
//! field" (§6) — which is exactly tabulation hashing: for each input byte
//! position there is a table of 256 random words, and the hash is the XOR of
//! the looked-up words. Tabulation hashing is 3-independent, more than
//! enough for Count-Min sketches and Bloom filters.
//!
//! [`HashFamily`] bundles several independent tabulation hash functions
//! derived from a single seed, one per sketch row / Bloom partition.

/// Number of byte positions a tabulation table covers. 16 matches the
/// NetCache key length; longer inputs wrap around with a position salt.
const TABLE_POSITIONS: usize = 16;

/// A single seeded tabulation hash function over byte strings.
#[derive(Debug, Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; 256]]>,
}

/// SplitMix64 step, used to expand a seed into table entries.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TabulationHash {
    /// Creates a hash function whose tables are filled from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut state = seed ^ 0xc2b2_ae3d_27d4_eb4f;
        let mut tables = Vec::with_capacity(TABLE_POSITIONS);
        for _ in 0..TABLE_POSITIONS {
            let mut table = [0u64; 256];
            for entry in table.iter_mut() {
                *entry = splitmix64(&mut state);
            }
            tables.push(table);
        }
        TabulationHash {
            tables: tables.into_boxed_slice(),
        }
    }

    /// Hashes `data` to a 64-bit value.
    ///
    /// Inputs longer than the table count (16 positions) reuse tables with a
    /// rotation salt so that positions remain distinguishable.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut h: u64 = 0x8422_2325_cbf2_9ce4;
        for (i, &byte) in data.iter().enumerate() {
            let word = self.tables[i % TABLE_POSITIONS][byte as usize];
            h ^= word.rotate_left(((i / TABLE_POSITIONS) as u32) & 63);
        }
        // Mix in the length so prefixes differ.
        h ^ (data.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Hashes `data` into the range `0..len`.
    pub fn index(&self, data: &[u8], len: usize) -> usize {
        debug_assert!(len > 0);
        // Multiply-shift reduction avoids modulo bias for power-of-two and
        // non-power-of-two lengths alike.
        ((u128::from(self.hash(data)) * len as u128) >> 64) as usize
    }
}

/// A family of independent tabulation hash functions.
#[derive(Debug, Clone)]
pub struct HashFamily {
    functions: Vec<TabulationHash>,
}

impl HashFamily {
    /// Creates `count` independent hash functions from `seed`.
    pub fn new(seed: u64, count: usize) -> Self {
        let mut state = seed;
        let functions = (0..count)
            .map(|_| TabulationHash::new(splitmix64(&mut state)))
            .collect();
        HashFamily { functions }
    }

    /// Number of functions in the family.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Hashes `data` with function `i` into `0..len`.
    pub fn index(&self, i: usize, data: &[u8], len: usize) -> usize {
        self.functions[i].index(data, len)
    }

    /// Hashes `data` with function `i` to a raw 64-bit value.
    pub fn hash(&self, i: usize, data: &[u8]) -> u64 {
        self.functions[i].hash(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = TabulationHash::new(42);
        let b = TabulationHash::new(42);
        for input in [&b"abc"[..], b"", b"0123456789abcdef0123"] {
            assert_eq!(a.hash(input), b.hash(input));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TabulationHash::new(1);
        let b = TabulationHash::new(2);
        assert_ne!(a.hash(b"hello"), b.hash(b"hello"));
    }

    #[test]
    fn index_in_range() {
        let h = TabulationHash::new(7);
        for len in [1usize, 2, 3, 64, 65536, 1_000_003] {
            for i in 0..100u64 {
                let idx = h.index(&i.to_be_bytes(), len);
                assert!(idx < len, "len={len} idx={idx}");
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let h = TabulationHash::new(3);
        let buckets = 16;
        let mut counts = vec![0usize; buckets];
        let n = 16_000;
        for i in 0..n as u64 {
            counts[h.index(&i.to_be_bytes(), buckets)] += 1;
        }
        let expected = n / buckets;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "bucket {b} has {c}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn long_inputs_distinguish_positions() {
        let h = TabulationHash::new(9);
        // Two 20-byte inputs differing only at position 17 (> TABLE_POSITIONS).
        let mut a = [0u8; 20];
        let mut b = [0u8; 20];
        a[17] = 1;
        b[17] = 2;
        assert_ne!(h.hash(&a), h.hash(&b));
    }

    #[test]
    fn prefix_inputs_differ() {
        let h = TabulationHash::new(11);
        assert_ne!(h.hash(b"ab"), h.hash(b"ab\0"));
    }

    #[test]
    fn family_functions_are_independent() {
        let fam = HashFamily::new(5, 4);
        assert_eq!(fam.len(), 4);
        let data = b"some key bytes!!";
        let hashes: Vec<u64> = (0..4).map(|i| fam.hash(i, data)).collect();
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(hashes[i], hashes[j]);
            }
        }
    }
}
