//! Query-statistics data structures for NetCache (§4.4.3, Fig. 7).
//!
//! The switch data plane identifies hot keys with three space-efficient
//! components, all of which this crate implements as standalone, reusable
//! structures:
//!
//! - a [`CountMinSketch`] (4 rows × 64K 16-bit slots in the prototype) that
//!   approximates per-key query frequency for *uncached* keys,
//! - a partitioned [`BloomFilter`] (3 arrays × 256K bits) that deduplicates
//!   hot-key reports to the controller,
//! - a [`CounterArray`] of per-key hit counters for *cached* keys, and
//! - a [`Sampler`] placed in front of the statistics path so that small
//!   (16-bit) counters do not overflow and sketch collisions stay rare.
//!
//! Hashing uses seeded tabulation hashing ([`hash::HashFamily`]), which is
//! the software analogue of the Tofino hash engines ("random XORing of bits
//! of the key field", §6).
//!
//! The switch program in `netcache-dataplane` re-implements the same logic
//! over its bounded register arrays; equivalence between the two is covered
//! by integration tests.

pub mod bloom;
pub mod cms;
pub mod counter;
pub mod hash;
pub mod sampler;
pub mod spacesaving;

pub use bloom::BloomFilter;
pub use cms::CountMinSketch;
pub use counter::CounterArray;
pub use hash::HashFamily;
pub use sampler::Sampler;
pub use spacesaving::SpaceSaving;
