//! Packet sampler (§4.4.3).
//!
//! "We add a sampling component in front of other components. Only sampled
//! queries are counted for statistics. The sampling component acts as a
//! high-pass filter for the Count-Min sketch ... It also allows us to use
//! small (16-bit) slot size for cache counters and the Count-Min sketch.
//! Same as the heavy-hitter threshold, the sample rate can be dynamically
//! configured by the controller."
//!
//! The sampler is a cheap xorshift PRNG compared against a threshold — the
//! same structure a data plane realizes with a hash of packet metadata and
//! a range match.

/// A probabilistic packet sampler with a controller-configurable rate.
#[derive(Debug, Clone)]
pub struct Sampler {
    state: u64,
    /// Inclusive threshold on the PRNG's 32-bit output: sample iff
    /// `next_u32 <= threshold`.
    threshold: u32,
    rate: f64,
}

impl Sampler {
    /// Creates a sampler taking each packet with probability `rate`
    /// (clamped to `[0, 1]`), seeded deterministically.
    pub fn new(rate: f64, seed: u64) -> Self {
        let mut s = Sampler {
            state: seed | 1, // xorshift state must be non-zero
            threshold: 0,
            rate: 0.0,
        };
        s.set_rate(rate);
        s
    }

    /// A sampler that samples every packet (rate 1.0).
    pub fn always(seed: u64) -> Self {
        Self::new(1.0, seed)
    }

    /// Reconfigures the sampling rate (a controller action).
    pub fn set_rate(&mut self, rate: f64) {
        let rate = rate.clamp(0.0, 1.0);
        self.rate = rate;
        self.threshold = if rate >= 1.0 {
            u32::MAX
        } else {
            // Map [0,1) onto [0, 2^32); rate 0 gives threshold 0 which
            // still passes value 0 with probability 2^-32 — treat exact
            // zero specially below.
            (rate * f64::from(u32::MAX)) as u32
        };
    }

    /// The configured sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Decides whether to sample the next packet.
    pub fn should_sample(&mut self) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        // Xorshift64*.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let out = (self.state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u32;
        out <= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_one_samples_everything() {
        let mut s = Sampler::always(1);
        assert!((0..1000).all(|_| s.should_sample()));
    }

    #[test]
    fn rate_zero_samples_nothing() {
        let mut s = Sampler::new(0.0, 2);
        assert!((0..1000).all(|_| !s.should_sample()));
    }

    #[test]
    fn empirical_rate_close_to_configured() {
        for &rate in &[0.1, 0.25, 0.5, 0.9] {
            let mut s = Sampler::new(rate, 42);
            let n = 200_000;
            let hits = (0..n).filter(|_| s.should_sample()).count();
            let observed = hits as f64 / n as f64;
            assert!(
                (observed - rate).abs() < 0.01,
                "rate {rate}: observed {observed}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Sampler::new(0.5, 7);
        let mut b = Sampler::new(0.5, 7);
        for _ in 0..100 {
            assert_eq!(a.should_sample(), b.should_sample());
        }
    }

    #[test]
    fn reconfiguration_takes_effect() {
        let mut s = Sampler::new(0.0, 9);
        assert!(!s.should_sample());
        s.set_rate(1.0);
        assert!(s.should_sample());
        assert_eq!(s.rate(), 1.0);
    }

    #[test]
    fn out_of_range_rates_clamped() {
        let s = Sampler::new(7.5, 1);
        assert_eq!(s.rate(), 1.0);
        let s = Sampler::new(-2.0, 1);
        assert_eq!(s.rate(), 0.0);
    }
}
