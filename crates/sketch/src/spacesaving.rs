//! The Space-Saving top-k algorithm (Metwally et al., ICDT 2005).
//!
//! This is the classical *server-side* heavy-hitter machinery a
//! SwitchKV-style design runs on every storage node: a bounded set of
//! counters that tracks approximate top-k keys of the stream each server
//! sees. NetCache's contribution is making this unnecessary — the switch
//! counts on-path (§1: the in-switch detector "obviates the need for
//! building, deploying, and managing a separate monitoring component in
//! the servers") — so this module exists for the comparison ablation.
//!
//! Guarantees: every key with true frequency > N/capacity is tracked, and
//! each reported count overestimates the truth by at most the recorded
//! error term.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// A Space-Saving sketch over keys of type `K`.
///
/// # Examples
///
/// ```
/// use netcache_sketch::SpaceSaving;
///
/// let mut ss: SpaceSaving<u64> = SpaceSaving::new(4);
/// for _ in 0..10 { ss.observe(1); }
/// for _ in 0..5 { ss.observe(2); }
/// let top = ss.top(2);
/// assert_eq!(top[0].0, 1);
/// assert_eq!(top[1].0, 2);
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Eq + Hash + Ord + Clone> {
    capacity: usize,
    /// key → (count, error).
    counters: HashMap<K, (u64, u64)>,
    /// (count, key) ordered set for O(log n) minimum lookup.
    order: BTreeSet<(u64, K)>,
    observed: u64,
}

impl<K: Eq + Hash + Ord + Clone> SpaceSaving<K> {
    /// Creates a sketch tracking at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSaving {
            capacity,
            counters: HashMap::with_capacity(capacity),
            order: BTreeSet::new(),
            observed: 0,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no key is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Total observations fed to the sketch.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Approximate state size in bytes (for the ablation's memory
    /// comparison; assumes 8-byte keys).
    pub fn memory_bytes(&self) -> usize {
        // count + error + key in the map, (count, key) in the order set.
        self.capacity * (8 + 8 + 8 + 16)
    }

    /// Feeds one observation of `key`.
    pub fn observe(&mut self, key: K) {
        self.observed += 1;
        if let Some(&(count, error)) = self.counters.get(&key) {
            self.order.remove(&(count, key.clone()));
            self.counters.insert(key.clone(), (count + 1, error));
            self.order.insert((count + 1, key));
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key.clone(), (1, 0));
            self.order.insert((1, key));
            return;
        }
        // Replace the minimum: the newcomer inherits its count as error.
        let (min_count, min_key) = self
            .order
            .first()
            .cloned()
            .expect("capacity > 0 and map full");
        self.order.remove(&(min_count, min_key.clone()));
        self.counters.remove(&min_key);
        self.counters
            .insert(key.clone(), (min_count + 1, min_count));
        self.order.insert((min_count + 1, key));
    }

    /// The estimated count and error bound for `key`, if tracked.
    pub fn estimate(&self, key: &K) -> Option<(u64, u64)> {
        self.counters.get(key).copied()
    }

    /// The top `k` keys by estimated count, descending.
    pub fn top(&self, k: usize) -> Vec<(K, u64)> {
        self.order
            .iter()
            .rev()
            .take(k)
            .map(|(count, key)| (key.clone(), *count))
            .collect()
    }

    /// Clears all counters (periodic epoch reset).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.order.clear();
        self.observed = 0;
    }

    /// Merges another sketch into an aggregate view (the controller-side
    /// aggregation a server-side design needs): counts for common keys
    /// add; the result is trimmed back to `capacity`.
    pub fn merge(&mut self, other: &SpaceSaving<K>) {
        let snapshot: Vec<(K, u64)> = other
            .counters
            .iter()
            .map(|(k, (c, _))| (k.clone(), *c))
            .collect();
        for (key, count) in snapshot {
            for _ in 0..count {
                self.observe(key.clone());
            }
        }
        // `observe` already maintains the capacity bound.
        self.observed = self.observed.saturating_sub(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(8);
        for i in 0..4u32 {
            for _ in 0..=i {
                ss.observe(i);
            }
        }
        assert_eq!(ss.estimate(&3), Some((4, 0)));
        assert_eq!(ss.estimate(&0), Some((1, 0)));
        let top = ss.top(2);
        assert_eq!(top[0], (3, 4));
        assert_eq!(top[1], (2, 3));
    }

    #[test]
    fn heavy_keys_survive_eviction_pressure() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(16);
        // One heavy key amid a long tail of singletons.
        for i in 0..2_000u32 {
            ss.observe(1_000_000);
            ss.observe(i);
        }
        let top = ss.top(1);
        assert_eq!(top[0].0, 1_000_000);
        let (count, error) = ss.estimate(&1_000_000).expect("tracked");
        assert!(count >= 2_000, "count {count}");
        assert!(count - error <= 2_000, "lower bound must not exceed truth");
    }

    #[test]
    fn overestimates_bounded_by_error_term() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(4);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        let stream: Vec<u32> = (0..500).map(|i| (i * 7 % 23) as u32).collect();
        for &k in &stream {
            ss.observe(k);
            *truth.entry(k).or_insert(0) += 1;
        }
        for (key, (count, error)) in ss.counters.iter() {
            let t = truth[key];
            assert!(*count >= t, "never underestimates");
            assert!(count - error <= t, "error bound violated for {key}");
        }
    }

    #[test]
    fn capacity_respected() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(8);
        for i in 0..1_000u32 {
            ss.observe(i);
        }
        assert_eq!(ss.len(), 8);
    }

    #[test]
    fn merge_aggregates_shards() {
        let mut a: SpaceSaving<u32> = SpaceSaving::new(8);
        let mut b: SpaceSaving<u32> = SpaceSaving::new(8);
        for _ in 0..10 {
            a.observe(1);
            b.observe(1);
            b.observe(2);
        }
        a.merge(&b);
        let top = a.top(2);
        assert_eq!(top[0].0, 1);
        assert!(top[0].1 >= 20);
        assert_eq!(top[1].0, 2);
    }

    #[test]
    fn clear_resets() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(4);
        ss.observe(1);
        ss.clear();
        assert!(ss.is_empty());
        assert_eq!(ss.observed(), 0);
        assert_eq!(ss.estimate(&1), None);
    }
}
