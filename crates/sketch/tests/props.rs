//! Property tests of the sketch guarantees the switch program relies on.

use netcache_sketch::{BloomFilter, CountMinSketch, Sampler};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Count-Min never underestimates, for any stream over any geometry.
    #[test]
    fn cms_never_underestimates(
        stream in proptest::collection::vec(0u16..64, 1..500),
        depth in 1usize..=4,
        width in 1usize..256,
    ) {
        let mut cms = CountMinSketch::new(depth, width, 7);
        let mut truth: HashMap<u16, u16> = HashMap::new();
        for k in stream {
            cms.increment(&k.to_be_bytes());
            *truth.entry(k).or_insert(0) += 1;
        }
        for (k, count) in truth {
            prop_assert!(
                cms.estimate(&k.to_be_bytes()) >= count,
                "key {} underestimated", k
            );
        }
    }

    /// Bloom filters have no false negatives, for any geometry.
    #[test]
    fn bloom_no_false_negatives(
        inserted in proptest::collection::hash_set(any::<u32>(), 0..200),
        partitions in 1usize..=4,
        bits in 1usize..4096,
    ) {
        let mut bf = BloomFilter::new(partitions, bits, 3);
        for k in &inserted {
            bf.insert(&k.to_be_bytes());
        }
        for k in &inserted {
            prop_assert!(bf.contains(&k.to_be_bytes()), "false negative for {}", k);
        }
    }

    /// `insert` returns `true` at most once per distinct element between
    /// clears (the report-dedup property the controller depends on).
    #[test]
    fn bloom_insert_true_at_most_once(
        stream in proptest::collection::vec(0u32..32, 1..300),
    ) {
        let mut bf = BloomFilter::new(3, 4096, 5);
        let mut first_reports: HashMap<u32, usize> = HashMap::new();
        for k in stream {
            if bf.insert(&k.to_be_bytes()) {
                *first_reports.entry(k).or_insert(0) += 1;
            }
        }
        for (k, times) in first_reports {
            prop_assert!(times <= 1, "key {} reported {} times", k, times);
        }
    }

    /// Accuracy bound, lower side: with a single distinct key there are no
    /// collisions to inflate any counter, so the estimate is *exact* for
    /// any geometry — the over-estimate comes only from collisions.
    #[test]
    fn cms_exact_for_single_distinct_key(
        key in any::<u32>(),
        n in 1u16..500,
        depth in 1usize..=4,
        width in 1usize..256,
    ) {
        let mut cms = CountMinSketch::new(depth, width, 7);
        for _ in 0..n {
            cms.increment(&key.to_be_bytes());
        }
        prop_assert_eq!(cms.estimate(&key.to_be_bytes()), n);
    }

    /// Accuracy bound, upper side: no estimate — even for a key never
    /// inserted — can exceed the total stream length, since every counter
    /// is incremented at most once per stream element.
    #[test]
    fn cms_estimate_bounded_by_stream_length(
        stream in proptest::collection::vec(0u16..64, 0..400),
        probe in any::<u16>(),
        depth in 1usize..=4,
        width in 1usize..256,
    ) {
        let mut cms = CountMinSketch::new(depth, width, 7);
        for k in &stream {
            cms.increment(&k.to_be_bytes());
        }
        prop_assert!(
            cms.estimate(&probe.to_be_bytes()) as usize <= stream.len(),
            "estimate for {} exceeds stream length {}", probe, stream.len()
        );
    }

    /// Estimates are monotone under stream growth: appending elements can
    /// only raise (never lower) any key's estimate.
    #[test]
    fn cms_estimates_monotone_under_growth(
        stream in proptest::collection::vec(0u16..64, 1..300),
        extra in proptest::collection::vec(0u16..64, 1..100),
    ) {
        let mut cms = CountMinSketch::new(3, 64, 7);
        for k in &stream {
            cms.increment(&k.to_be_bytes());
        }
        let before: Vec<u16> = (0u16..64).map(|k| cms.estimate(&k.to_be_bytes())).collect();
        for k in &extra {
            cms.increment(&k.to_be_bytes());
        }
        for (k, &b) in before.iter().enumerate() {
            prop_assert!(
                cms.estimate(&(k as u16).to_be_bytes()) >= b,
                "estimate for {} decreased after growth", k
            );
        }
    }

    /// The sampler's long-run acceptance rate tracks the configured rate.
    #[test]
    fn sampler_rate_tracks_configuration(rate in 0.05f64..0.95, seed in any::<u64>()) {
        let mut s = Sampler::new(rate, seed);
        let n = 50_000;
        let accepted = (0..n).filter(|_| s.should_sample()).count();
        let observed = accepted as f64 / n as f64;
        prop_assert!(
            (observed - rate).abs() < 0.03,
            "configured {} observed {}", rate, observed
        );
    }
}
