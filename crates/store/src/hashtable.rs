//! A separate-chaining hash table, the TommyDS stand-in.
//!
//! Buckets are `Vec`s of `(Key, V)` pairs; the table doubles when the load
//! factor exceeds 0.75. Hashing is a seeded mix of the key bytes so the
//! table's layout is independent of the partitioner's and the switch's hash
//! functions (correlated hashing between layers is a classic way to
//! accidentally break load-balance experiments).

use netcache_proto::Key;

/// A chained hash table from [`Key`] to `V`.
///
/// # Examples
///
/// ```
/// use netcache_store::ChainedHashTable;
/// use netcache_proto::Key;
///
/// let mut t = ChainedHashTable::new();
/// t.insert(Key::from_u64(1), "a");
/// assert_eq!(t.get(&Key::from_u64(1)), Some(&"a"));
/// assert_eq!(t.remove(&Key::from_u64(1)), Some("a"));
/// ```
#[derive(Debug, Clone)]
pub struct ChainedHashTable<V> {
    buckets: Vec<Vec<(Key, V)>>,
    len: usize,
    seed: u64,
}

const INITIAL_BUCKETS: usize = 16;
const MAX_LOAD_NUM: usize = 3;
const MAX_LOAD_DEN: usize = 4;

impl<V> ChainedHashTable<V> {
    /// Creates an empty table with a default seed.
    pub fn new() -> Self {
        Self::with_seed(0x7f4a_7c15_9e37_79b9)
    }

    /// Creates an empty table whose bucket placement derives from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        ChainedHashTable {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            len: 0,
            seed,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket count (for tests of growth behaviour).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn hash(&self, key: &Key) -> u64 {
        // xxhash-style avalanche over the two 8-byte halves of the key.
        let b = key.as_bytes();
        let mut h = self.seed ^ 0x51_7c_c1_b7_27_22_0a_95;
        for half in [&b[..8], &b[8..]] {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(half);
            let mut v = u64::from_le_bytes(lane);
            v = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            v ^= v >> 29;
            h = (h ^ v).wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        h ^= h >> 33;
        h
    }

    fn bucket_of(&self, key: &Key) -> usize {
        (self.hash(key) % self.buckets.len() as u64) as usize
    }

    fn grow_if_needed(&mut self) {
        if self.len * MAX_LOAD_DEN <= self.buckets.len() * MAX_LOAD_NUM {
            return;
        }
        let new_count = self.buckets.len() * 2;
        let mut new_buckets: Vec<Vec<(Key, V)>> = (0..new_count).map(|_| Vec::new()).collect();
        for bucket in self.buckets.drain(..) {
            for (key, value) in bucket {
                let h = {
                    // Inline the hash since `self.buckets` is drained.
                    let b = key.as_bytes();
                    let mut h = self.seed ^ 0x51_7c_c1_b7_27_22_0a_95;
                    for half in [&b[..8], &b[8..]] {
                        let mut lane = [0u8; 8];
                        lane.copy_from_slice(half);
                        let mut v = u64::from_le_bytes(lane);
                        v = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        v ^= v >> 29;
                        h = (h ^ v).wrapping_mul(0xff51_afd7_ed55_8ccd);
                    }
                    h ^ (h >> 33)
                };
                new_buckets[(h % new_count as u64) as usize].push((key, value));
            }
        }
        self.buckets = new_buckets;
    }

    /// Inserts or replaces the value for `key`, returning the old value.
    pub fn insert(&mut self, key: Key, value: V) -> Option<V> {
        let idx = self.bucket_of(&key);
        for slot in &mut self.buckets[idx] {
            if slot.0 == key {
                return Some(core::mem::replace(&mut slot.1, value));
            }
        }
        self.buckets[idx].push((key, value));
        self.len += 1;
        self.grow_if_needed();
        None
    }

    /// Returns a reference to the value for `key`.
    pub fn get(&self, key: &Key) -> Option<&V> {
        self.buckets[self.bucket_of(key)]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Returns a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: &Key) -> Option<&mut V> {
        let idx = self.bucket_of(key);
        self.buckets[idx]
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Removes and returns the value for `key`.
    pub fn remove(&mut self, key: &Key) -> Option<V> {
        let idx = self.bucket_of(key);
        let pos = self.buckets[idx].iter().position(|(k, _)| k == key)?;
        self.len -= 1;
        Some(self.buckets[idx].swap_remove(pos).1)
    }

    /// Iterates all `(key, value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, v)| (k, v)))
    }
}

impl<V> Default for ChainedHashTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = ChainedHashTable::new();
        assert_eq!(t.insert(Key::from_u64(1), 10), None);
        assert_eq!(t.insert(Key::from_u64(2), 20), None);
        assert_eq!(t.get(&Key::from_u64(1)), Some(&10));
        assert_eq!(t.insert(Key::from_u64(1), 11), Some(10));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(&Key::from_u64(1)), Some(11));
        assert_eq!(t.remove(&Key::from_u64(1)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = ChainedHashTable::new();
        t.insert(Key::from_u64(7), 1);
        *t.get_mut(&Key::from_u64(7)).unwrap() += 41;
        assert_eq!(t.get(&Key::from_u64(7)), Some(&42));
        assert_eq!(t.get_mut(&Key::from_u64(8)), None);
    }

    #[test]
    fn grows_under_load_and_keeps_items() {
        let mut t = ChainedHashTable::new();
        let n = 10_000u64;
        for i in 0..n {
            t.insert(Key::from_u64(i), i * 2);
        }
        assert!(t.bucket_count() > INITIAL_BUCKETS);
        assert_eq!(t.len(), n as usize);
        for i in 0..n {
            assert_eq!(t.get(&Key::from_u64(i)), Some(&(i * 2)), "key {i}");
        }
    }

    #[test]
    fn iter_visits_everything_once() {
        let mut t = ChainedHashTable::new();
        for i in 0..100u64 {
            t.insert(Key::from_u64(i), i);
        }
        let mut seen: Vec<u64> = t.iter().map(|(_, v)| *v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let mut a = ChainedHashTable::with_seed(1);
        let mut b = ChainedHashTable::with_seed(2);
        for i in 0..50u64 {
            a.insert(Key::from_u64(i), ());
            b.insert(Key::from_u64(i), ());
        }
        // Same contents regardless of layout.
        for i in 0..50u64 {
            assert!(a.get(&Key::from_u64(i)).is_some());
            assert!(b.get(&Key::from_u64(i)).is_some());
        }
    }

    #[test]
    fn bucket_distribution_not_degenerate() {
        let mut t = ChainedHashTable::new();
        for i in 0..4096u64 {
            t.insert(Key::from_u64(i), ());
        }
        let max_chain = t.buckets.iter().map(Vec::len).max().unwrap();
        assert!(
            max_chain < 16,
            "longest chain {max_chain} suggests bad hashing"
        );
    }
}
