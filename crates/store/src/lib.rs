//! The in-memory key-value store substrate.
//!
//! The paper's evaluation uses "a simple (not optimized) in-memory
//! key-value store with TommyDS" (§6) behind the server agent. This crate
//! is the equivalent substrate, built from scratch:
//!
//! - [`ChainedHashTable`] — a separate-chaining hash table in the spirit of
//!   TommyDS's fixed-size chained tables, with incremental growth;
//! - [`ShardedStore`] — per-core sharding over the table ("Our server agent
//!   supports per-core sharding with Receive Side Scaling", §6);
//! - [`Partitioner`] — the rack-level hash partitioning of the keyspace
//!   across storage servers ("the key-value items are hash-partitioned to
//!   the storage servers", §3).

pub mod hashtable;
pub mod partition;
pub mod shard;

pub use hashtable::ChainedHashTable;
pub use partition::Partitioner;
pub use shard::{ShardedStore, StoredItem};
