//! Rack-level hash partitioning of the keyspace (§3).
//!
//! "We assume the rack is dedicated for key-value storage and the key-value
//! items are hash-partitioned to the storage servers." Clients compute the
//! partition locally (they set the destination IP of the home server,
//! §4.1), so the partitioner must be a pure deterministic function shared
//! by clients, servers, the controller and the simulator.

use netcache_proto::Key;

/// MurmurHash3's 64-bit finaliser: full avalanche, so every input bit
/// flips every output bit with probability ≈ 1/2.
fn fmix64(mut v: u64) -> u64 {
    v ^= v >> 33;
    v = v.wrapping_mul(0xff51_afd7_ed55_8ccd);
    v ^= v >> 33;
    v = v.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    v ^= v >> 33;
    v
}

/// A deterministic hash partitioner over a fixed number of partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    partitions: u32,
    seed: u64,
}

impl Partitioner {
    /// Creates a partitioner over `partitions` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(partitions: u32, seed: u64) -> Self {
        assert!(partitions > 0, "at least one partition required");
        Partitioner { partitions, seed }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// The partition that owns `key`.
    pub fn partition_of(&self, key: &Key) -> u32 {
        let b = key.as_bytes();
        let mut h = self.seed ^ 0x2545_f491_4f6c_dd1d;
        for half in [&b[..8], &b[8..]] {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(half);
            h = (h ^ fmix64(u64::from_le_bytes(lane)))
                .rotate_left(27)
                .wrapping_mul(5)
                .wrapping_add(0x52dc_e729);
        }
        // Multiply-shift reduction onto the partition range. Needs the
        // *high* bits of `h` to be well mixed, hence the full final
        // avalanche: a plain xor-shift here leaves lattice structure on
        // sequential key ids, which shows up as multi-sigma ownership
        // skew across racks and correlated leaf/spine assignments.
        ((u128::from(fmix64(h)) * u128::from(self.partitions)) >> 64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = Partitioner::new(128, 9);
        for i in 0..100u64 {
            let k = Key::from_u64(i);
            assert_eq!(p.partition_of(&k), p.partition_of(&k));
        }
    }

    #[test]
    fn in_range() {
        let p = Partitioner::new(7, 3);
        for i in 0..10_000u64 {
            assert!(p.partition_of(&Key::from_u64(i)) < 7);
        }
    }

    #[test]
    fn roughly_balanced_for_uniform_keys() {
        let n_parts = 128u32;
        let p = Partitioner::new(n_parts, 1);
        let n_keys = 128_000u64;
        let mut counts = vec![0usize; n_parts as usize];
        for i in 0..n_keys {
            counts[p.partition_of(&Key::from_u64(i)) as usize] += 1;
        }
        let expected = (n_keys / u64::from(n_parts)) as usize;
        for (part, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "partition {part}: {c} vs expected ≈{expected}"
            );
        }
    }

    #[test]
    fn sequential_ids_stay_within_multinomial_noise() {
        // Guards the finaliser's avalanche quality: a weak final mix
        // leaves lattice structure on sequential key ids (the common
        // `Key::from_u64(0..n)` datasets), which showed up as multi-sigma
        // ownership skew across racks. Uniform hashing puts each
        // partition's count within a few standard deviations of n/p.
        for seed in [1u64, 2, 3, 0x7261_636b, 0x7370_696e, 0x5eed] {
            for parts in [4u32, 6, 16, 37] {
                let p = Partitioner::new(parts, seed);
                let n = 8_000u64;
                let mut counts = vec![0.0f64; parts as usize];
                for i in 0..n {
                    counts[p.partition_of(&Key::from_u64(i)) as usize] += 1.0;
                }
                let mean = n as f64 / f64::from(parts);
                let sigma = (mean * (1.0 - 1.0 / f64::from(parts))).sqrt();
                for (part, &c) in counts.iter().enumerate() {
                    assert!(
                        (c - mean).abs() < 5.0 * sigma,
                        "seed {seed:#x} parts {parts} partition {part}: \
                         {c} keys vs expected {mean:.0} (sigma {sigma:.1})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_partition_owns_all() {
        let p = Partitioner::new(1, 5);
        for i in 0..100u64 {
            assert_eq!(p.partition_of(&Key::from_u64(i)), 0);
        }
    }

    #[test]
    fn seed_changes_assignment() {
        let a = Partitioner::new(16, 1);
        let b = Partitioner::new(16, 2);
        let moved = (0..1000u64)
            .filter(|&i| {
                let k = Key::from_u64(i);
                a.partition_of(&k) != b.partition_of(&k)
            })
            .count();
        assert!(moved > 500, "only {moved} keys moved between seeds");
    }
}
