//! Per-core sharded storage (§6).
//!
//! "Our server agent supports per-core sharding with Receive Side Scaling
//! or DPDK Flow Director to handle highly concurrent workloads." A
//! [`ShardedStore`] splits the key space across `shards` independently
//! locked hash tables, hashed the way an RSS NIC would spread flows.

use netcache_proto::{Key, Value};
use parking_lot::Mutex;

use crate::hashtable::ChainedHashTable;

/// A stored item: the value plus its version (the SEQ of the write that
/// produced it, used by the coherence protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredItem {
    /// The value bytes.
    pub value: Value,
    /// Version of the last applied write.
    pub version: u32,
}

/// A sharded, thread-safe key-value store.
///
/// # Examples
///
/// ```
/// use netcache_store::ShardedStore;
/// use netcache_proto::{Key, Value};
///
/// let store = ShardedStore::new(4);
/// store.put(Key::from_u64(1), Value::filled(7, 16), 1);
/// assert_eq!(store.get(&Key::from_u64(1)).unwrap().version, 1);
/// ```
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Mutex<ChainedHashTable<StoredItem>>>,
}

impl ShardedStore {
    /// Creates a store with `shards` shards (one per core, typically).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        ShardedStore {
            shards: (0..shards)
                .map(|i| Mutex::new(ChainedHashTable::with_seed(0xabcd ^ i as u64)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index for `key` (RSS-style hash of the key bytes).
    pub fn shard_of(&self, key: &Key) -> usize {
        let b = key.as_bytes();
        let mut h: u64 = 0x9747_b28c_8a65_4e3d;
        for &byte in b {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // FNV's high bits are weak; finish with an avalanche so the
        // multiply-shift reduction below sees well-mixed bits.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        ((u128::from(h) * self.shards.len() as u128) >> 64) as usize
    }

    /// Reads the item for `key`.
    pub fn get(&self, key: &Key) -> Option<StoredItem> {
        self.shards[self.shard_of(key)].lock().get(key).cloned()
    }

    /// Writes `value` with `version`, returning the previous item.
    pub fn put(&self, key: Key, value: Value, version: u32) -> Option<StoredItem> {
        self.shards[self.shard_of(&key)]
            .lock()
            .insert(key, StoredItem { value, version })
    }

    /// Deletes `key`, returning the removed item.
    pub fn delete(&self, key: &Key) -> Option<StoredItem> {
        self.shards[self.shard_of(key)].lock().remove(key)
    }

    /// Total item count across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every item from every shard (a chain replica wiping its
    /// state on restart, before resyncing from the chain head).
    pub fn clear(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            *shard.lock() = ChainedHashTable::with_seed(0xabcd ^ i as u64);
        }
    }

    /// Visits every stored `(key, item)` pair, shard by shard. Order is
    /// arbitrary; each shard's lock is held only while that shard is
    /// visited, so `f` must not re-enter the store.
    pub fn for_each(&self, mut f: impl FnMut(&Key, &StoredItem)) {
        for shard in &self.shards {
            for (k, v) in shard.lock().iter() {
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_delete() {
        let s = ShardedStore::new(4);
        assert!(s.put(Key::from_u64(1), Value::filled(1, 16), 1).is_none());
        let item = s.get(&Key::from_u64(1)).unwrap();
        assert_eq!(item.value, Value::filled(1, 16));
        assert_eq!(item.version, 1);
        let old = s.put(Key::from_u64(1), Value::filled(2, 16), 2).unwrap();
        assert_eq!(old.version, 1);
        assert_eq!(s.delete(&Key::from_u64(1)).unwrap().version, 2);
        assert!(s.get(&Key::from_u64(1)).is_none());
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let s = ShardedStore::new(16);
        for i in 0..1000u64 {
            let k = Key::from_u64(i);
            let shard = s.shard_of(&k);
            assert!(shard < 16);
            assert_eq!(shard, s.shard_of(&k));
        }
    }

    #[test]
    fn shards_spread_keys() {
        let s = ShardedStore::new(8);
        let mut counts = [0usize; 8];
        for i in 0..8000u64 {
            counts[s.shard_of(&Key::from_u64(i))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500 && c < 2000, "shard {i}: {c}");
        }
    }

    #[test]
    fn clear_and_for_each() {
        let s = ShardedStore::new(4);
        for i in 0..100u64 {
            s.put(Key::from_u64(i), Value::for_item(i, 16), (i + 1) as u32);
        }
        let mut seen = Vec::new();
        s.for_each(|_, item| seen.push(item.version));
        seen.sort_unstable();
        assert_eq!(seen, (1..=100).collect::<Vec<u32>>());
        s.clear();
        assert!(s.is_empty());
        s.put(Key::from_u64(1), Value::filled(9, 8), 5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let s = Arc::new(ShardedStore::new(8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let k = Key::from_u64(t * 1000 + i);
                    s.put(k, Value::for_item(i, 32), 1);
                    assert!(s.get(&k).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 8000);
    }
}
