//! Model-based property tests: the chained hash table against
//! `std::collections::HashMap`, and partitioner stability.

use netcache_proto::Key;
use netcache_store::{ChainedHashTable, Partitioner};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Update(u16, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u16>().prop_map(Op::Remove),
        any::<u16>().prop_map(Op::Get),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Update(k, v)),
    ]
}

proptest! {
    /// The chained table behaves exactly like `HashMap` under arbitrary
    /// operation sequences (including growth).
    #[test]
    fn hashtable_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut table: ChainedHashTable<u32> = ChainedHashTable::new();
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let old = table.insert(Key::from_u64(u64::from(k)), v);
                    prop_assert_eq!(old, model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(
                        table.remove(&Key::from_u64(u64::from(k))),
                        model.remove(&k)
                    );
                }
                Op::Get(k) => {
                    prop_assert_eq!(
                        table.get(&Key::from_u64(u64::from(k))).copied(),
                        model.get(&k).copied()
                    );
                }
                Op::Update(k, v) => {
                    let table_slot = table.get_mut(&Key::from_u64(u64::from(k)));
                    let model_slot = model.get_mut(&k);
                    prop_assert_eq!(table_slot.is_some(), model_slot.is_some());
                    if let (Some(t), Some(m)) = (table_slot, model_slot) {
                        *t = v;
                        *m = v;
                    }
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Full-content comparison at the end.
        let mut contents: Vec<(u64, u32)> =
            table.iter().map(|(k, v)| (k.low_u64(), *v)).collect();
        contents.sort_unstable();
        let mut expected: Vec<(u64, u32)> =
            model.iter().map(|(k, v)| (u64::from(*k), *v)).collect();
        expected.sort_unstable();
        prop_assert_eq!(contents, expected);
    }

    /// Partitioning is a pure function of (key, count, seed).
    #[test]
    fn partitioner_is_stable(key in any::<u64>(), parts in 1u32..4096, seed in any::<u64>()) {
        let p1 = Partitioner::new(parts, seed);
        let p2 = Partitioner::new(parts, seed);
        let k = Key::from_u64(key);
        prop_assert_eq!(p1.partition_of(&k), p2.partition_of(&k));
        prop_assert!(p1.partition_of(&k) < parts);
    }
}
