//! Dynamic workloads (§7.1, §7.4): hot-in, random, hot-out.
//!
//! The Zipf sampler draws a popularity *rank*; a [`PopularityMap`] is the
//! permutation from rank to key id. Workload changes permute the map:
//!
//! - **Hot-in** — "the N coldest keys are moved to the top of the
//!   popularity ranks; other keys decrease their popularity ranks
//!   accordingly" (a radical change: the new hot keys are not cached);
//! - **Random** — "N hot keys are randomly selected from the top M hottest
//!   keys, and are replaced with random N cold keys" (moderate);
//! - **Hot-out** — "the N hottest keys are moved to the bottom of the
//!   popularity ranks" (small: the next M−N keys are already cached).

use rand::seq::SliceRandom;
use rand::Rng;

/// The three dynamic workload patterns of §7.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicWorkload {
    /// Coldest `n` keys become the hottest.
    HotIn {
        /// Change size N.
        n: usize,
    },
    /// `n` random keys within the top `m` swap with random cold keys.
    Random {
        /// Change size N.
        n: usize,
        /// Cache size M (the band hot keys are drawn from).
        m: usize,
    },
    /// Hottest `n` keys become the coldest.
    HotOut {
        /// Change size N.
        n: usize,
    },
}

/// A permutation from popularity rank to key id.
///
/// Starts as a virtual identity (rank `i` ↔ key `i`) that costs no memory
/// — important for the 100M-key static workloads — and materializes into
/// an explicit permutation only when a dynamic change first mutates it.
///
/// # Examples
///
/// ```
/// use netcache_workload::PopularityMap;
///
/// let mut map = PopularityMap::identity(10);
/// assert_eq!(map.key_of_rank(0), 0);
/// map.hot_in(2); // the two coldest keys (8, 9) become hottest
/// assert_eq!(map.key_of_rank(0), 8);
/// assert_eq!(map.key_of_rank(1), 9);
/// assert_eq!(map.key_of_rank(2), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PopularityMap {
    /// Number of keys (authoritative for the identity representation).
    n: usize,
    /// `ranks[r]` is the key id at popularity rank `r`; empty while the
    /// map is still the identity.
    ranks: Option<Vec<u64>>,
}

impl PopularityMap {
    /// The identity map: key `i` has rank `i`.
    pub fn identity(n: usize) -> Self {
        PopularityMap { n, ranks: None }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The key id at popularity rank `rank`.
    pub fn key_of_rank(&self, rank: u64) -> u64 {
        match &self.ranks {
            Some(ranks) => ranks[rank as usize],
            None => rank,
        }
    }

    /// The hottest `count` key ids (rank order).
    pub fn hottest(&self, count: usize) -> Vec<u64> {
        let count = count.min(self.n);
        match &self.ranks {
            Some(ranks) => ranks[..count].to_vec(),
            None => (0..count as u64).collect(),
        }
    }

    fn materialize(&mut self) -> &mut Vec<u64> {
        self.ranks
            .get_or_insert_with(|| (0..self.n as u64).collect())
    }

    /// Applies a hot-in change of size `n`.
    pub fn hot_in(&mut self, n: usize) {
        let n = n.min(self.n);
        self.materialize().rotate_right(n);
    }

    /// Applies a hot-out change of size `n`.
    pub fn hot_out(&mut self, n: usize) {
        let n = n.min(self.n);
        self.materialize().rotate_left(n);
    }

    /// Applies a random change: `n` keys sampled from the top `m` swap
    /// places with `n` keys sampled from the cold remainder.
    pub fn random_replace<R: Rng + ?Sized>(&mut self, n: usize, m: usize, rng: &mut R) {
        let len = self.n;
        let m = m.min(len);
        if m == 0 || m == len {
            return;
        }
        let n = n.min(m).min(len - m);
        // Choose n distinct hot ranks in 0..m and n distinct cold ranks in
        // m..len, then swap them pairwise.
        let mut hot: Vec<usize> = (0..m).collect();
        hot.shuffle(rng);
        let mut cold: Vec<usize> = (m..len).collect();
        cold.shuffle(rng);
        let ranks = self.materialize();
        for i in 0..n {
            ranks.swap(hot[i], cold[i]);
        }
    }

    /// Applies `change` once.
    pub fn apply<R: Rng + ?Sized>(&mut self, change: DynamicWorkload, rng: &mut R) {
        match change {
            DynamicWorkload::HotIn { n } => self.hot_in(n),
            DynamicWorkload::Random { n, m } => self.random_replace(n, m, rng),
            DynamicWorkload::HotOut { n } => self.hot_out(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn is_permutation(map: &PopularityMap) -> bool {
        let mut seen = vec![false; map.len()];
        for r in 0..map.len() as u64 {
            let k = map.key_of_rank(r) as usize;
            if seen[k] {
                return false;
            }
            seen[k] = true;
        }
        seen.into_iter().all(|s| s)
    }

    #[test]
    fn identity_maps_rank_to_key() {
        let map = PopularityMap::identity(5);
        for r in 0..5 {
            assert_eq!(map.key_of_rank(r), r);
        }
    }

    #[test]
    fn hot_in_moves_coldest_to_top() {
        let mut map = PopularityMap::identity(10);
        map.hot_in(3);
        assert_eq!(map.hottest(4), &[7, 8, 9, 0]);
        assert!(is_permutation(&map));
    }

    #[test]
    fn hot_out_moves_hottest_to_bottom() {
        let mut map = PopularityMap::identity(10);
        map.hot_out(3);
        assert_eq!(map.hottest(3), &[3, 4, 5]);
        assert_eq!(map.key_of_rank(9), 2);
        assert!(is_permutation(&map));
    }

    #[test]
    fn random_replace_keeps_permutation_and_moves_n_keys() {
        let mut map = PopularityMap::identity(100);
        let before: Vec<u64> = map.hottest(20).to_vec();
        map.random_replace(5, 20, &mut rng());
        assert!(is_permutation(&map));
        let after = map.hottest(20);
        let moved = before.iter().filter(|k| !after.contains(k)).count();
        assert_eq!(moved, 5);
    }

    #[test]
    fn repeated_hot_in_cycles() {
        let mut map = PopularityMap::identity(6);
        for _ in 0..6 {
            map.hot_in(1);
        }
        // Six single rotations return to identity.
        for r in 0..6 {
            assert_eq!(map.key_of_rank(r), r);
        }
    }

    #[test]
    fn oversized_changes_clamped() {
        let mut map = PopularityMap::identity(4);
        map.hot_in(100);
        assert!(is_permutation(&map));
        map.hot_out(100);
        assert!(is_permutation(&map));
        map.random_replace(100, 100, &mut rng());
        assert!(is_permutation(&map));
    }

    #[test]
    fn apply_dispatches() {
        let mut map = PopularityMap::identity(10);
        map.apply(DynamicWorkload::HotIn { n: 2 }, &mut rng());
        assert_eq!(map.key_of_rank(0), 8);
        map.apply(DynamicWorkload::HotOut { n: 2 }, &mut rng());
        map.apply(DynamicWorkload::Random { n: 2, m: 5 }, &mut rng());
        assert!(is_permutation(&map));
    }
}
