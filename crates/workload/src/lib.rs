//! Workload generation for the NetCache evaluation (§7.1).
//!
//! - [`ZipfGenerator`] — a fast approximate Zipf sampler ("Our client uses
//!   approximation techniques to quickly generate queries under a Zipf
//!   distribution", after Gray et al. SIGMOD'94, the same method YCSB
//!   uses), with exact per-rank probabilities for the analytical models;
//! - [`PopularityMap`] — the rank→key permutation, mutated by the three
//!   dynamic workloads of §7.4 (hot-in, random, hot-out);
//! - [`QueryMix`] — read/write mixes with independently skewed read and
//!   write key distributions (Fig. 10(d) uses zipf reads with uniform or
//!   zipf writes);
//! - [`SizeMix`] — deterministic key → value-size-class assignment for
//!   size-mixed workloads (small items alongside chunked large values).

pub mod dynamics;
pub mod mix;
pub mod sizes;
pub mod zipf;

pub use dynamics::{DynamicWorkload, PopularityMap};
pub use mix::{QueryKind, QueryMix, WriteSkew};
pub use sizes::{SizeClass, SizeMix};
pub use zipf::ZipfGenerator;
