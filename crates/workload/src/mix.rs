//! Read/write query mixes (§7.1, Fig. 10(d)).
//!
//! Reads follow a Zipf distribution over popularity ranks; writes follow
//! either a uniform distribution ("with uniform write queries, load across
//! the storage servers is balanced") or the same skewed distribution as
//! reads (the adversarial case where "the effect of caching would
//! disappear").

use rand::{Rng, RngExt};

use crate::dynamics::PopularityMap;
use crate::zipf::ZipfGenerator;

/// How write keys are distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteSkew {
    /// Writes pick keys uniformly at random.
    Uniform,
    /// Writes follow the same Zipf distribution as reads.
    SameAsReads,
}

/// One generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// A read of key id.
    Get(u64),
    /// A write of key id.
    Put(u64),
}

impl QueryKind {
    /// The key id this query targets.
    pub fn key_id(&self) -> u64 {
        match self {
            QueryKind::Get(k) | QueryKind::Put(k) => *k,
        }
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, QueryKind::Put(_))
    }
}

/// A query generator combining a Zipf rank sampler, a popularity map and a
/// write mix.
#[derive(Debug, Clone)]
pub struct QueryMix {
    zipf: ZipfGenerator,
    popularity: PopularityMap,
    write_ratio: f64,
    write_skew: WriteSkew,
}

impl QueryMix {
    /// Creates a mix over `num_keys` keys with read skew `theta`,
    /// `write_ratio ∈ [0,1]` writes, distributed per `write_skew`.
    ///
    /// # Panics
    ///
    /// Panics if `write_ratio` is outside `[0, 1]` (via assert) or `theta`
    /// outside `[0, 1)` (via [`ZipfGenerator::new`]).
    pub fn new(num_keys: u64, theta: f64, write_ratio: f64, write_skew: WriteSkew) -> Self {
        assert!(
            (0.0..=1.0).contains(&write_ratio),
            "write_ratio {write_ratio} outside [0,1]"
        );
        QueryMix {
            zipf: ZipfGenerator::new(num_keys, theta),
            popularity: PopularityMap::identity(num_keys as usize),
            write_ratio,
            write_skew,
        }
    }

    /// A read-only mix (most experiments).
    pub fn read_only(num_keys: u64, theta: f64) -> Self {
        Self::new(num_keys, theta, 0.0, WriteSkew::Uniform)
    }

    /// The underlying Zipf sampler.
    pub fn zipf(&self) -> &ZipfGenerator {
        &self.zipf
    }

    /// The popularity map (mutable, for dynamic workloads).
    pub fn popularity_mut(&mut self) -> &mut PopularityMap {
        &mut self.popularity
    }

    /// The popularity map.
    pub fn popularity(&self) -> &PopularityMap {
        &self.popularity
    }

    /// Draws the next query.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> QueryKind {
        let is_write = self.write_ratio > 0.0 && rng.random::<f64>() < self.write_ratio;
        if is_write {
            let key = match self.write_skew {
                WriteSkew::Uniform => rng.random_range(0..self.zipf.n()),
                WriteSkew::SameAsReads => self.popularity.key_of_rank(self.zipf.sample(rng)),
            };
            QueryKind::Put(key)
        } else {
            QueryKind::Get(self.popularity.key_of_rank(self.zipf.sample(rng)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn read_only_produces_only_gets() {
        let mix = QueryMix::read_only(100, 0.99);
        let mut r = rng();
        assert!((0..1000).all(|_| !mix.sample(&mut r).is_write()));
    }

    #[test]
    fn write_ratio_respected() {
        let mix = QueryMix::new(1000, 0.9, 0.3, WriteSkew::Uniform);
        let mut r = rng();
        let n = 100_000;
        let writes = (0..n).filter(|_| mix.sample(&mut r).is_write()).count();
        let ratio = writes as f64 / n as f64;
        assert!((ratio - 0.3).abs() < 0.01, "observed write ratio {ratio}");
    }

    #[test]
    fn uniform_writes_are_spread() {
        let mix = QueryMix::new(100, 0.99, 1.0, WriteSkew::Uniform);
        let mut r = rng();
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[mix.sample(&mut r).key_id() as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max < 2000,
            "uniform writes should not concentrate: max {max}"
        );
    }

    #[test]
    fn skewed_writes_concentrate_on_hot_keys() {
        let mix = QueryMix::new(10_000, 0.99, 1.0, WriteSkew::SameAsReads);
        let mut r = rng();
        let hot = (0..100_000)
            .filter(|_| mix.sample(&mut r).key_id() < 100)
            .count();
        assert!(
            hot > 50_000,
            "zipf-.99 writes should mostly hit the head: {hot}/100000"
        );
    }

    #[test]
    fn popularity_map_reroutes_reads() {
        let mut mix = QueryMix::read_only(1000, 0.99);
        mix.popularity_mut().hot_in(10);
        let mut r = rng();
        // The most frequent keys must now be the formerly-coldest ids.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(mix.sample(&mut r).key_id()).or_insert(0u64) += 1;
        }
        let top = counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&k, _)| k)
            .unwrap();
        assert!(
            top >= 990,
            "hottest key should be a rotated-in id, got {top}"
        );
    }
}
