//! Value-size mixtures for size-mixed workloads.
//!
//! Production key-value traces mix small metadata items with occasional
//! large blobs; the size a key carries is a property of the key, not of
//! the individual query. [`SizeMix`] assigns each key id one of a fixed
//! set of weighted size classes by seeded hash, so every layer of a
//! simulation — dataset loader, query generator, per-class accounting —
//! agrees on a key's size without any shared mutable table.

/// One value-size class in a [`SizeMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClass {
    /// Logical payload length in bytes for keys of this class.
    pub value_len: usize,
    /// Relative weight (share of the keyspace, not of the traffic).
    pub weight: u32,
}

/// A deterministic key → size-class assignment.
///
/// Class membership is `splitmix64(key_id ^ seed)` reduced against the
/// cumulative weights, so the assignment is uniform across the keyspace
/// and independent of key popularity: hot and cold keys draw their sizes
/// from the same distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeMix {
    classes: Vec<SizeClass>,
    total_weight: u64,
    seed: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SizeMix {
    /// Builds a mix from weighted classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or all weights are zero.
    pub fn new(classes: Vec<SizeClass>, seed: u64) -> Self {
        let total_weight: u64 = classes.iter().map(|c| u64::from(c.weight)).sum();
        assert!(
            total_weight > 0,
            "size mix needs at least one nonzero weight"
        );
        SizeMix {
            classes,
            total_weight,
            seed,
        }
    }

    /// The classes, in construction order ([`class_of`](Self::class_of)
    /// indexes into this slice).
    pub fn classes(&self) -> &[SizeClass] {
        &self.classes
    }

    /// The class index assigned to `key_id`.
    pub fn class_of(&self, key_id: u64) -> usize {
        let mut draw = splitmix64(key_id ^ self.seed) % self.total_weight;
        for (i, c) in self.classes.iter().enumerate() {
            let w = u64::from(c.weight);
            if draw < w {
                return i;
            }
            draw -= w;
        }
        unreachable!("draw below total weight always lands in a class")
    }

    /// The value length assigned to `key_id`.
    pub fn len_of(&self, key_id: u64) -> usize {
        self.classes[self.class_of(key_id)].value_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> SizeMix {
        SizeMix::new(
            vec![
                SizeClass {
                    value_len: 64,
                    weight: 80,
                },
                SizeClass {
                    value_len: 512,
                    weight: 15,
                },
                SizeClass {
                    value_len: 4096,
                    weight: 5,
                },
            ],
            0x517e,
        )
    }

    #[test]
    fn assignment_is_deterministic() {
        let (a, b) = (mix(), mix());
        assert!((0..10_000).all(|id| a.len_of(id) == b.len_of(id)));
    }

    #[test]
    fn class_shares_track_weights() {
        let m = mix();
        let mut counts = [0u64; 3];
        let n = 100_000u64;
        for id in 0..n {
            counts[m.class_of(id)] += 1;
        }
        for (c, expect) in counts.iter().zip([0.80, 0.15, 0.05]) {
            let share = *c as f64 / n as f64;
            assert!(
                (share - expect).abs() < 0.01,
                "share {share} far from weight {expect}"
            );
        }
    }

    #[test]
    fn seed_changes_the_assignment() {
        let a = mix();
        let b = SizeMix::new(a.classes().to_vec(), 0x7ea1);
        assert!((0..10_000).any(|id| a.class_of(id) != b.class_of(id)));
    }

    #[test]
    #[should_panic(expected = "nonzero weight")]
    fn zero_weights_rejected() {
        SizeMix::new(
            vec![SizeClass {
                value_len: 64,
                weight: 0,
            }],
            1,
        );
    }
}
