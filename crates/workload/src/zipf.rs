//! Approximate Zipf sampling after Gray et al., "Quickly Generating
//! Billion-Record Synthetic Databases" (SIGMOD 1994) — the paper's cited
//! query-generation technique (reference 18 of the paper).
//!
//! Rank 0 is the hottest item; rank `n-1` the coldest. The skew parameter
//! `theta` matches the paper's usage (0.9, 0.95, 0.99); `theta = 0` yields
//! the uniform distribution.

use rand::{Rng, RngExt};

/// A Zipf(θ) sampler over ranks `0..n`, with O(n) setup and O(1) sampling.
///
/// # Examples
///
/// ```
/// use netcache_workload::ZipfGenerator;
/// let mut rng = rand::rng();
/// let zipf = ZipfGenerator::new(1000, 0.99);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    zeta2: f64,
    eta: f64,
}

impl ZipfGenerator {
    /// Creates a sampler over `n` ranks with skew `theta ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)` (the paper never
    /// uses θ ≥ 1; the Gray approximation needs θ ≠ 1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!((0.0..1.0).contains(&theta), "theta {theta} outside [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfGenerator {
            n,
            theta,
            alpha,
            zetan,
            zeta2,
            eta,
        }
    }

    /// How many leading terms [`Self::zeta`] sums exactly before switching
    /// to the integral approximation.
    const ZETA_EXACT_TERMS: u64 = 1_000_000;

    /// The generalized harmonic number `Σ_{i=1..n} 1/i^theta`.
    ///
    /// The first million terms are summed exactly; the remainder uses the
    /// midpoint integral `∫ x^-θ dx`, whose error is negligible at that
    /// depth (the integrand is nearly flat per step). This keeps setup
    /// O(1M) even for the 100M-key keyspaces the experiments use.
    fn zeta(n: u64, theta: f64) -> f64 {
        let exact = n.min(Self::ZETA_EXACT_TERMS);
        let mut sum = 0.0;
        for i in 1..=exact {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact {
            // Midpoint rule: Σ_{i=a..b} i^-θ ≈ ∫_{a-1/2}^{b+1/2} x^-θ dx.
            let a = exact as f64 + 0.5;
            let b = n as f64 + 0.5;
            sum += if (theta - 1.0).abs() < 1e-12 {
                (b / a).ln()
            } else {
                (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
            };
        }
        sum
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `0..n` (0 = hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Exact probability of rank `r` under the true Zipf distribution
    /// (used by the analytical load model of Fig. 10(f)).
    pub fn probability(&self, rank: u64) -> f64 {
        assert!(rank < self.n);
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Total probability mass of the hottest `count` ranks — the maximum
    /// cache hit ratio a cache of `count` items can reach.
    pub fn head_mass(&self, count: u64) -> f64 {
        Self::zeta(count.min(self.n), self.theta) / self.zetan
    }

    /// `zeta(2, theta)` (exposed for tests of the approximation).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> impl Rng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn samples_in_range() {
        let z = ZipfGenerator::new(100, 0.99);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 100);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for theta in [0.0, 0.5, 0.9, 0.99] {
            let z = ZipfGenerator::new(1000, theta);
            let sum: f64 = (0..1000).map(|r| z.probability(r)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "theta {theta}: sum {sum}");
        }
    }

    #[test]
    fn empirical_matches_exact_for_hot_ranks() {
        let n = 10_000u64;
        let z = ZipfGenerator::new(n, 0.99);
        let mut r = rng();
        let draws = 500_000;
        let mut counts = [0u64; 16];
        for _ in 0..draws {
            let rank = z.sample(&mut r);
            if rank < 16 {
                counts[rank as usize] += 1;
            }
        }
        for rank in 0..16u64 {
            let expected = z.probability(rank) * draws as f64;
            let observed = counts[rank as usize] as f64;
            // The Gray approximation is deliberately approximate: the
            // continuous inverse-CDF compresses up to ~20% of mass onto
            // ranks near the head (the same bias YCSB's generator has).
            assert!(
                (observed - expected).abs() < expected * 0.25 + 30.0,
                "rank {rank}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfGenerator::new(100, 0.0);
        for r in 0..100 {
            assert!((z.probability(r) - 0.01).abs() < 1e-12);
        }
        let mut r = rng();
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        for (rank, &c) in counts.iter().enumerate() {
            assert!(c > 500 && c < 2000, "rank {rank}: {c}");
        }
    }

    #[test]
    fn head_mass_matches_facebook_observation() {
        // "10% of items account for 60-90% of queries" (§1, citing the
        // Facebook Memcached study): check zipf-0.99 lands in that band.
        let z = ZipfGenerator::new(100_000, 0.99);
        let mass = z.head_mass(10_000);
        assert!(
            (0.6..=0.95).contains(&mass),
            "top 10% mass {mass} outside the expected band"
        );
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let n = 10_000;
        let m90 = ZipfGenerator::new(n, 0.90).head_mass(100);
        let m95 = ZipfGenerator::new(n, 0.95).head_mass(100);
        let m99 = ZipfGenerator::new(n, 0.99).head_mass(100);
        assert!(m90 < m95 && m95 < m99);
    }

    #[test]
    fn single_rank_degenerates() {
        let z = ZipfGenerator::new(1, 0.9);
        let mut r = rng();
        assert_eq!(z.sample(&mut r), 0);
        assert!((z.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0,1)")]
    fn theta_one_rejected() {
        ZipfGenerator::new(10, 1.0);
    }
}
