//! Dynamic-workload demo: the hot-in churn of §7.4 at miniature scale.
//!
//! Every "second" the 20 coldest keys jump to the top of the popularity
//! ranking. The switch's Count-Min sketch detects them, the Bloom filter
//! dedups the reports, and the controller swaps them into the cache —
//! watch the hit ratio collapse and recover, round after round.
//!
//! Run with: `cargo run --release --example dynamic_workload`

use netcache::{Rack, RackConfig, RackHandle};
use netcache_proto::Key;
use netcache_workload::QueryMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const KEYS: u64 = 5_000;
const CACHE: usize = 64;
const QUERIES_PER_ROUND: usize = 8_000;

fn main() {
    let mut config = RackConfig::small(8);
    config.controller.cache_capacity = CACHE;
    config.switch.hot_threshold = 16;
    let rack = Rack::new(config).expect("valid config");
    rack.load_dataset(KEYS, 64);
    rack.populate_cache((0..CACHE as u64).map(Key::from_u64));

    let mut mix = QueryMix::read_only(KEYS, 0.99);
    let mut rng = StdRng::seed_from_u64(42);
    let mut client = rack.client(0);

    println!(
        "{:>5} {:>8} {:>9} {:>10} {:>11}",
        "round", "hit %", "cached", "insertions", "evictions"
    );
    let mut last_insertions = 0;
    let mut last_evictions = 0;
    for round in 0..12 {
        // Hot-in churn every 4 rounds (like the paper's every-10-seconds).
        if round > 0 && round % 4 == 0 {
            mix.popularity_mut().hot_in(20);
            println!("      ── hot-in: 20 coldest keys become the hottest ──");
        }
        let mut hits = 0usize;
        for _ in 0..QUERIES_PER_ROUND {
            let q = mix.sample(&mut rng);
            let resp = client.get(Key::from_u64(q.key_id())).expect("reply");
            if resp.served_by_cache() {
                hits += 1;
            }
        }
        // One controller cycle per round (the paper's 1-second cadence).
        rack.advance(1_000_000_000);
        rack.run_controller();
        rack.tick();
        let stats = rack.controller_stats();
        println!(
            "{:>5} {:>7.1}% {:>9} {:>10} {:>11}",
            round,
            hits as f64 / QUERIES_PER_ROUND as f64 * 100.0,
            rack.cached_keys(),
            stats.insertions - last_insertions,
            stats.evictions - last_evictions,
        );
        last_insertions = stats.insertions;
        last_evictions = stats.evictions;
    }
    println!();
    println!(
        "The dips after each hot-in are healed by the in-network \
         heavy-hitter detector + controller within a round (§7.4, Fig. 11(a))."
    );
}
