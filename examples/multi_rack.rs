//! Multi-rack scale-out planning with the Fig. 10(f) model (§5).
//!
//! Explores how a key-value service grows from one rack to a 32-rack
//! deployment under the three caching schemes, and where each scheme's
//! bottleneck sits.
//!
//! Run with: `cargo run --release --example multi_rack`

use netcache_sim::{MultiRackConfig, MultiRackModel, ScaleOutScheme};

fn main() {
    let config = MultiRackConfig {
        servers_per_rack: 128,
        num_keys: 10_000_000,
        theta: 0.99,
        leaf_cache_items: 10_000,
        spine_cache_items: 10_000,
        server_rate: 10e6,
        leaf_switch_rate: 2e9,
        partition_seed: 42,
        ..MultiRackConfig::default()
    };
    let model = MultiRackModel::new(config).expect("valid config");

    println!("scale-out under zipf-0.99, 128 servers/rack @ 10 MQPS, 2 BQPS ToRs\n");
    println!(
        "{:>6} {:>8} | {:>10} {:>12} {:>12} | {:>22}",
        "racks", "servers", "NoCache", "Leaf", "Leaf+Spine", "ideal (servers x T)"
    );
    for racks in [1u32, 2, 4, 8, 16, 32] {
        let ideal = f64::from(racks * 128) * 10e6;
        println!(
            "{:>6} {:>8} | {:>9.2}B {:>11.2}B {:>11.2}B | {:>21.2}B",
            racks,
            racks * 128,
            model.throughput(racks, ScaleOutScheme::NoCache) / 1e9,
            model.throughput(racks, ScaleOutScheme::LeafCache) / 1e9,
            model.throughput(racks, ScaleOutScheme::LeafSpineCache) / 1e9,
            ideal / 1e9,
        );
    }

    println!();
    println!("How big must the leaf caches be? (8 racks, Leaf-Cache only)");
    println!("{:>12} {:>12}", "items/ToR", "throughput");
    for items in [100usize, 1_000, 10_000, 100_000] {
        // items = 0 with no spine would be an entirely cache-less fabric,
        // which the config validation rejects — the NoCache column above
        // already shows that regime.
        let m = MultiRackModel::new(MultiRackConfig {
            leaf_cache_items: items,
            spine_cache_items: 0,
            num_keys: 10_000_000,
            ..MultiRackConfig::default()
        })
        .expect("valid config");
        println!(
            "{:>12} {:>11.2}B",
            items,
            m.throughput(8, ScaleOutScheme::LeafCache) / 1e9
        );
    }
    println!();
    println!(
        "Takeaway (§5): per-rack caches balance servers inside a rack, but \
         only spine-level caching removes the inter-rack hotspot, restoring \
         linear scaling."
    );
}
