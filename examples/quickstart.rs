//! Quickstart: build a NetCache rack, read and write through the switch
//! cache, and watch the controller learn hot keys.
//!
//! Run with: `cargo run --release --example quickstart`

use netcache::{Rack, RackConfig, RackHandle};
use netcache_proto::{Key, Value};

fn main() {
    // A small rack: 8 storage servers behind one NetCache ToR switch.
    let mut config = RackConfig::small(8);
    config.controller.cache_capacity = 64;
    let rack = Rack::new(config).expect("rack config is valid");

    // Load a dataset: keys 0..1000 with deterministic 64-byte values.
    rack.load_dataset(1000, 64);
    println!("rack up: 8 servers, dataset of 1000 items loaded");

    // Pre-populate the switch cache with what we expect to be hot.
    let warmed = rack.populate_cache((0..32).map(Key::from_u64));
    println!("pre-populated cache with {warmed} items");

    let mut client = rack.client(0);

    // A cached read is served by the switch without touching any server.
    let resp = client.get(Key::from_u64(5)).expect("reply");
    println!(
        "GET key 5 -> {} bytes, served by {}",
        resp.value().expect("value present").len(),
        if resp.served_by_cache() {
            "SWITCH CACHE"
        } else {
            "server"
        }
    );

    // An uncached read goes to the key's home server.
    let resp = client.get(Key::from_u64(500)).expect("reply");
    println!(
        "GET key 500 -> {} bytes, served by {}",
        resp.value().expect("value present").len(),
        if resp.served_by_cache() {
            "switch cache"
        } else {
            "SERVER"
        }
    );

    // Writing a cached key: the switch invalidates its copy, the server
    // commits and pushes the new value back into the switch (write-through
    // coherence, §4.3). The next read hits the refreshed cache.
    client
        .put(Key::from_u64(5), Value::filled(0xAB, 64))
        .expect("put ack");
    let resp = client.get(Key::from_u64(5)).expect("reply");
    assert_eq!(resp.value().expect("value"), &Value::filled(0xAB, 64));
    println!(
        "PUT key 5 then GET -> new value from {} (coherent)",
        if resp.served_by_cache() {
            "SWITCH CACHE"
        } else {
            "server"
        }
    );

    // Hammer an uncached key: the switch's Count-Min sketch marks it hot,
    // the Bloom filter dedups the report, and the controller inserts it.
    for _ in 0..50 {
        client.get(Key::from_u64(700)).expect("reply");
    }
    rack.run_controller();
    let resp = client.get(Key::from_u64(700)).expect("reply");
    println!(
        "after 50 GETs + controller cycle, key 700 served by {}",
        if resp.served_by_cache() {
            "SWITCH CACHE"
        } else {
            "server"
        }
    );

    let stats = rack.switch_stats();
    println!(
        "switch stats: {} hits, {} misses, {} invalidations, {} updates",
        stats.cache_hits, stats.cache_misses, stats.write_invalidations, stats.updates_applied
    );
}
