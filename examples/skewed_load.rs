//! Skewed-load demo: the motivating scenario of the paper's introduction.
//!
//! A zipf-0.99 workload hammers a 16-server rack. Without the switch
//! cache, the server owning the hottest keys melts while the rest idle;
//! with the cache, the load is balanced and aggregate throughput jumps.
//!
//! Run with: `cargo run --release --example skewed_load`

use netcache::{Rack, RackConfig, RackHandle};
use netcache_proto::Key;
use netcache_workload::QueryMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SERVERS: u32 = 16;
const KEYS: u64 = 20_000;
const QUERIES: usize = 40_000;

fn run(rack: &Rack, label: &str) {
    let mix = QueryMix::read_only(KEYS, 0.99);
    let mut rng = StdRng::seed_from_u64(7);
    let mut client = rack.client(0);
    let mut hits = 0usize;
    for _ in 0..QUERIES {
        let q = mix.sample(&mut rng);
        let resp = client.get(Key::from_u64(q.key_id())).expect("reply");
        if resp.served_by_cache() {
            hits += 1;
        }
    }
    // Per-server query counts from the agents.
    let mut loads: Vec<u64> = (0..SERVERS).map(|i| rack.server_stats(i).gets).collect();
    let total: u64 = loads.iter().sum();
    loads.sort_unstable();
    let max = *loads.last().expect("non-empty");
    let median = loads[loads.len() / 2];
    println!("── {label} ──");
    println!(
        "  cache hit ratio : {:.1}%",
        hits as f64 / QUERIES as f64 * 100.0
    );
    println!("  server queries  : {total}");
    println!(
        "  hottest server  : {max} queries ({:.1}% of server load)",
        max as f64 / total.max(1) as f64 * 100.0
    );
    println!("  median server   : {median} queries");
    println!(
        "  imbalance       : max/median = {:.1}x",
        max as f64 / median.max(1) as f64
    );
    let bar_max = 40.0;
    for (i, &load) in loads.iter().enumerate().rev() {
        let width = (load as f64 / max as f64 * bar_max) as usize;
        println!("  srv[{i:>2}] {:>7} |{}", load, "█".repeat(width.max(1)));
    }
}

fn main() {
    println!("zipf-0.99 reads, {SERVERS} servers, {KEYS} keys, {QUERIES} queries\n");

    // Baseline: no cache (capacity 0).
    let mut config = RackConfig::small(SERVERS);
    config.controller.cache_capacity = 0;
    let nocache = Rack::new(config).expect("valid config");
    nocache.load_dataset(KEYS, 64);
    run(&nocache, "NoCache: every query reaches a storage server");

    println!();

    // NetCache: cache the 64 hottest keys in the switch.
    let mut config = RackConfig::small(SERVERS);
    config.controller.cache_capacity = 64;
    config.switch.value_slots = 64;
    config.switch.cache_capacity = 64;
    let netcache = Rack::new(config).expect("valid config");
    netcache.load_dataset(KEYS, 64);
    netcache.populate_cache((0..64).map(Key::from_u64));
    run(&netcache, "NetCache: top-64 keys served by the ToR switch");

    println!();
    println!(
        "A cache of O(N log N) items flattens the per-server load \
         (§2: 'small cache, big effect')."
    );
}
