//! Real-sockets cluster: the rack as separate threads exchanging NetCache
//! frames over loopback UDP — the reproduction's analogue of the paper's
//! DPDK client/server processes around a Tofino.
//!
//! Run with: `cargo run --release --example udp_cluster`

use std::time::{Duration, Instant};

use netcache::udp::UdpRack;
use netcache::RackConfig;
use netcache_client::Response;
use netcache_proto::{Key, Value};
use netcache_workload::QueryMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 64;
    let rack = UdpRack::start(config).expect("sockets bind on loopback");
    println!("UDP rack up: switch at {}", rack.switch_addr());

    rack.load_dataset(2_000, 64);
    rack.populate_cache((0..64).map(Key::from_u64));
    println!("dataset loaded, 64 hottest keys cached in the switch thread");

    let mut client = rack.client(0);

    // Round-trip a cached read and an uncached read over real sockets.
    match client.get(Key::from_u64(3)) {
        Some(Response::Value {
            from_cache, value, ..
        }) => {
            println!(
                "GET 3   -> {} bytes via {}",
                value.len(),
                if from_cache { "switch cache" } else { "server" }
            )
        }
        other => panic!("unexpected: {other:?}"),
    }
    match client.get(Key::from_u64(1500)) {
        Some(Response::Value { from_cache, .. }) => {
            println!(
                "GET 1500 -> via {}",
                if from_cache { "switch cache" } else { "server" }
            )
        }
        other => panic!("unexpected: {other:?}"),
    }

    // Write-through coherence across threads and sockets.
    client
        .put(Key::from_u64(3), Value::filled(0x77, 64))
        .expect("put acked");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match client.get(Key::from_u64(3)) {
            Some(Response::Value {
                value, from_cache, ..
            }) if value == Value::filled(0x77, 64) => {
                println!(
                    "PUT 3 then GET -> new value via {} (coherent over UDP)",
                    if from_cache { "switch cache" } else { "server" }
                );
                break;
            }
            _ if Instant::now() > deadline => panic!("cache update never landed"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }

    // A short throughput burst with a skewed workload.
    let mix = QueryMix::read_only(2_000, 0.99);
    let mut rng = StdRng::seed_from_u64(1);
    let n = 5_000;
    let start = Instant::now();
    let mut hits = 0;
    for _ in 0..n {
        let q = mix.sample(&mut rng);
        if let Some(Response::Value {
            from_cache: true, ..
        }) = client.get(Key::from_u64(q.key_id()))
        {
            hits += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{n} zipf-0.99 reads in {secs:.2}s ({:.0} QPS over loopback), {:.1}% cache hits",
        n as f64 / secs,
        hits as f64 / n as f64 * 100.0
    );

    let stats = rack.switch_stats();
    println!(
        "switch thread stats: {} packets, {} hits, {} misses",
        stats.packets, stats.cache_hits, stats.cache_misses
    );
    rack.stop();
    println!("rack stopped cleanly");
}
