//! Real-sockets cluster: the rack as separate threads exchanging NetCache
//! frames over loopback UDP — the reproduction's analogue of the paper's
//! DPDK client/server processes around a Tofino.
//!
//! Run with: `cargo run --release --example udp_cluster`
//!
//! Pass `--loss <p>` (0.0–1.0) to inject seeded probabilistic loss (plus a
//! little duplication and delay) on every switch egress and watch the
//! client retransmission machinery absorb it. The fault seed honours
//! `NETCACHE_TEST_SEED` for reproducible runs.

use std::time::{Duration, Instant};

use netcache::udp::UdpRack;
use netcache::{seed_from_env, FaultConfig, RackConfig, RackHandle};
use netcache_client::Response;
use netcache_proto::{Key, Value};
use netcache_workload::QueryMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parses `--loss <p>` from the command line (0 when absent; the last
/// occurrence wins, as is conventional).
fn loss_from_args() -> f64 {
    fn usage(problem: &str) -> ! {
        eprintln!("error: {problem}");
        eprintln!("usage: udp_cluster [--loss <p>]   with p in 0.0..=1.0, e.g. --loss 0.05");
        std::process::exit(2);
    }
    let mut loss = 0.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--loss" => {
                let Some(raw) = args.next() else {
                    usage("--loss takes a probability");
                };
                let Ok(p) = raw.parse::<f64>() else {
                    usage(&format!("--loss: not a number: {raw:?}"));
                };
                if !(0.0..=1.0).contains(&p) {
                    usage(&format!("--loss: {p} is outside 0.0..=1.0"));
                }
                loss = p;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    loss
}

fn main() {
    let loss = loss_from_args();
    let seed = seed_from_env(0x0c10_57e4);
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 64;
    if loss > 0.0 {
        config.faults = FaultConfig {
            loss,
            duplicate: loss / 4.0,
            reorder: loss / 4.0,
            max_delay_ns: 500_000,
            seed,
        };
    }
    let rack = UdpRack::start(config).expect("sockets bind on loopback");
    println!("UDP rack up: switch at {}", rack.switch_addr());
    if loss > 0.0 {
        println!(
            "fault model on: {:.1}% loss per switch egress (seed {seed:#x})",
            loss * 100.0
        );
    }

    rack.load_dataset(2_000, 64);
    rack.populate_cache((0..64).map(Key::from_u64));
    println!("dataset loaded, 64 hottest keys cached in the switch thread");

    let mut client = rack.client(0);

    // Round-trip a cached read and an uncached read over real sockets.
    match client.get(Key::from_u64(3)) {
        Some(Response::Value {
            from_cache, value, ..
        }) => {
            println!(
                "GET 3   -> {} bytes via {}",
                value.len(),
                if from_cache { "switch cache" } else { "server" }
            )
        }
        other => panic!("unexpected: {other:?}"),
    }
    match client.get(Key::from_u64(1500)) {
        Some(Response::Value { from_cache, .. }) => {
            println!(
                "GET 1500 -> via {}",
                if from_cache { "switch cache" } else { "server" }
            )
        }
        other => panic!("unexpected: {other:?}"),
    }

    // Write-through coherence across threads and sockets.
    client
        .put(Key::from_u64(3), Value::filled(0x77, 64))
        .expect("put acked");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match client.get(Key::from_u64(3)) {
            Some(Response::Value {
                value, from_cache, ..
            }) if value == Value::filled(0x77, 64) => {
                println!(
                    "PUT 3 then GET -> new value via {} (coherent over UDP)",
                    if from_cache { "switch cache" } else { "server" }
                );
                break;
            }
            _ if Instant::now() > deadline => panic!("cache update never landed"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }

    // A short throughput burst with a skewed workload.
    let mix = QueryMix::read_only(2_000, 0.99);
    let mut rng = StdRng::seed_from_u64(seed_from_env(1));
    let n = if loss > 0.0 { 1_000 } else { 5_000 };
    let start = Instant::now();
    let mut hits = 0;
    let mut lost = 0;
    for _ in 0..n {
        let q = mix.sample(&mut rng);
        match client.get(Key::from_u64(q.key_id())) {
            Some(Response::Value {
                from_cache: true, ..
            }) => hits += 1,
            Some(_) => {}
            None => lost += 1,
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{n} zipf-0.99 reads in {secs:.2}s ({:.0} QPS over loopback), {:.1}% cache hits, \
         {lost} abandoned",
        n as f64 / secs,
        hits as f64 / n as f64 * 100.0
    );

    let stats = rack.switch_stats();
    println!(
        "switch thread stats: {} packets, {} hits, {} misses",
        stats.packets, stats.cache_hits, stats.cache_misses
    );
    if loss > 0.0 {
        let f = rack.faults().stats();
        println!(
            "faults injected: {} dropped, {} duplicated, {} delayed; client: {} retransmissions, \
             {} duplicate replies suppressed",
            f.dropped,
            f.duplicated,
            f.delayed,
            client.retries(),
            client.stale_replies()
        );
    }
    rack.stop();
    println!("rack stopped cleanly");
}
