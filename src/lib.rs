//! Workspace-level integration test host for the NetCache reproduction.
