//! Variable-length application keys end-to-end (§5).

use netcache::{Rack, RackConfig};
use netcache_client::AppResponse;
use netcache_proto::Key;

fn rack() -> Rack {
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 16;
    config.switch.hot_threshold = 8;
    Rack::new(config).expect("valid config")
}

#[test]
fn string_keys_round_trip() {
    let r = rack();
    let mut c = r.client(0);
    c.put_app(b"user:alice:profile", b"{\"name\":\"alice\"}")
        .expect("ack");
    c.put_app(b"user:bob:profile", b"{\"name\":\"bob\"}")
        .expect("ack");
    match c.get_app(b"user:alice:profile").expect("reply") {
        AppResponse::Payload { payload, .. } => assert_eq!(payload, b"{\"name\":\"alice\"}"),
        other => panic!("unexpected {other:?}"),
    }
    match c.get_app(b"user:bob:profile").expect("reply") {
        AppResponse::Payload { payload, .. } => assert_eq!(payload, b"{\"name\":\"bob\"}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn missing_app_key_not_found() {
    let r = rack();
    let mut c = r.client(0);
    assert_eq!(
        c.get_app(b"no-such-key").expect("reply"),
        AppResponse::NotFound
    );
}

#[test]
fn app_keys_are_cacheable_and_verified_from_cache() {
    let r = rack();
    let mut c = r.client(0);
    c.put_app(b"hot:item", b"payload!").expect("ack");
    // Heat the key past the HH threshold, let the controller cache it.
    for _ in 0..40 {
        c.get_app(b"hot:item").expect("reply");
    }
    r.run_controller();
    match c.get_app(b"hot:item").expect("reply") {
        AppResponse::Payload {
            payload,
            from_cache,
        } => {
            assert_eq!(payload, b"payload!");
            assert!(from_cache, "hot app key should be served by the switch");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn collisions_are_detected_not_silently_wrong() {
    // Simulate a hash collision by writing a record under key B's hash
    // while it carries key A's identity (a real 128-bit collision is
    // unconstructible here, which is rather the point of 16-byte hashes).
    let r = rack();
    let mut c = r.client(0);
    let record = netcache_client::AppRecord::new(b"key-A", b"payload-A").expect("fits");
    let foreign_hash = Key::from_app_key(b"key-B");
    c.put(foreign_hash, record.encode()).expect("ack");
    match c.get_app(b"key-B").expect("reply") {
        AppResponse::Collision { stored_key } => assert_eq!(stored_key, b"key-A"),
        other => panic!("collision not detected: {other:?}"),
    }
}

#[test]
fn app_key_delete() {
    let r = rack();
    let mut c = r.client(0);
    c.put_app(b"tmp", b"x").expect("ack");
    c.delete_app(b"tmp").expect("ack");
    assert_eq!(c.get_app(b"tmp").expect("reply"), AppResponse::NotFound);
}

#[test]
fn oversized_app_inputs_rejected_client_side() {
    let r = rack();
    let mut c = r.client(0);
    let long_key = vec![b'k'; 65];
    assert!(c.put_app(&long_key, b"x").is_none());
    // One past what fits beside the length byte and the embedded key in a
    // maximally recirculated value.
    let big_payload = vec![0u8; netcache_proto::MAX_VALUE_LEN - 1 - b"k".len() + 1];
    assert!(c.put_app(b"k", &big_payload).is_none());
}
