//! Property-based tests of the chain-replication layer: arbitrary
//! replication factors (f ∈ {0..3} tolerated failures, factor = f + 1
//! replicas) driven through arbitrary kill/restart/repair schedules.
//!
//! The chain invariants checked after every repair and at the end:
//!
//! - **Version monotonicity**: walking a chain head → tail, stored
//!   versions never increase — the head is the serialization point that
//!   stamps versions, the tail the commit point, so a suffix of the chain
//!   may lag but never lead.
//! - **Read-from-tail freshness**: every acked read lands inside the
//!   admissible set (an acked write committed at the tail, hence at every
//!   replica, and can never be lost while any chain member survives).
//! - **Repair convergence**: once every server is back up and a repair
//!   cycle has run, every chain is at full strength again.
//!
//! A partition whose *entire* chain is dead or wiped at some instant has
//! genuinely lost its data (that takes f + 1 simultaneous failures); the
//! model downgrades those keys to "anything issued" rather than asserting
//! the impossible.

use netcache::{Rack, RackConfig, RackHandle, RackReport, RetryPolicy};
use netcache_client::Response;
use netcache_proto::{Key, Value};
use proptest::prelude::*;

const SERVERS: u32 = 4;
const KEYS: u64 = 8;

/// A scripted step in a chain scenario.
#[derive(Debug, Clone)]
enum Step {
    /// Write the next unique counter to key `k`.
    Put { k: u8 },
    /// Read key `k` and check admissibility.
    Get { k: u8 },
    /// Delete key `k`.
    Delete { k: u8 },
    /// Ask the controller to cache key `k` (reads from the chain tail).
    Cache { k: u8 },
    /// Crash server `s` (drops everything until restarted).
    Kill { s: u8 },
    /// Restart server `s`: wiped, waits for re-sync before serving.
    Restart { s: u8 },
    /// Run a controller cycle: failure detection, splice, re-sync.
    Controller,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // The vendored proptest has no weighted arms; bias the mix by pairing
    // each kill-flavored arm with the workload arms it stresses.
    prop_oneof![
        (0u8..KEYS as u8, 0u8..4).prop_map(|(k, which)| match which {
            0 => Step::Delete { k },
            1 => Step::Cache { k },
            _ => Step::Put { k },
        }),
        (0u8..KEYS as u8).prop_map(|k| Step::Get { k }),
        (0u8..SERVERS as u8, any::<bool>()).prop_map(|(s, kill)| {
            if kill {
                Step::Kill { s }
            } else {
                Step::Restart { s }
            }
        }),
        Just(Step::Controller),
    ]
}

/// Values carry the write counter, as in the chaos suite.
fn val(counter: u64) -> Value {
    Value::new(counter.to_be_bytes().to_vec()).expect("8 bytes fits")
}

fn counter_of(v: &Value) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&v.as_bytes()[..8]);
    u64::from_be_bytes(b)
}

/// Ground truth for one key: the admissible observations, plus an escape
/// hatch once the key's whole chain was lost at some instant.
#[derive(Clone)]
struct KeyModel {
    max_issued: u64,
    admissible: Vec<Option<u64>>,
    /// True after every member of the key's chain was simultaneously dead
    /// or wiped: acked data may be legitimately gone, so reads are only
    /// bounded by `max_issued` until the next acked write re-anchors.
    anything: bool,
}

impl KeyModel {
    fn new() -> Self {
        KeyModel {
            max_issued: 0,
            admissible: vec![None],
            anything: false,
        }
    }

    fn commit(&mut self, v: Option<u64>) {
        self.admissible = vec![v];
        self.anything = false;
    }

    fn admit(&mut self, v: Option<u64>) {
        if !self.admissible.contains(&v) {
            self.admissible.push(v);
        }
    }
}

/// The current chains, head → tail, one per partition — `None` when the
/// rack runs unreplicated (factor 1 keeps the legacy single-home path and
/// has no repair plane).
fn current_chains(rack: &Rack) -> Option<Vec<Vec<u32>>> {
    rack.with_controller(|c| {
        c.chain_manager().map(|cm| {
            (0..cm.servers())
                .map(|p| cm.chain(p).to_vec())
                .collect::<Vec<_>>()
        })
    })
}

/// Version monotonicity down every chain, for every key: where two chain
/// members both hold the key, the upstream version must be >= the
/// downstream one. (Members that are dead or lack the key — e.g. a delete
/// applied at a prefix — are skipped; there is nothing to compare.)
fn assert_version_monotonicity(rack: &Rack) -> Result<(), TestCaseError> {
    let Some(chains) = current_chains(rack) else {
        return Ok(());
    };
    for k in 0..KEYS {
        let key = Key::from_u64(k);
        let p = rack.addressing().partition_of(&key);
        let versions: Vec<(u32, u32)> = chains[p as usize]
            .iter()
            .filter_map(|&s| rack.server(s).fetch(&key).map(|i| (s, i.version)))
            .collect();
        for w in versions.windows(2) {
            prop_assert!(
                w[0].1 >= w[1].1,
                "key {}: version inversion down chain {:?}: {:?}",
                k,
                chains[p as usize],
                versions
            );
        }
    }
    Ok(())
}

/// Replays one scripted chain scenario and checks every invariant.
fn check_chain(factor: u32, steps: &[Step]) -> Result<(), TestCaseError> {
    let mut config = RackConfig::small(SERVERS);
    config.replication_factor = factor;
    config.controller.cache_capacity = 8;
    let rack = Rack::new(config).expect("valid config");
    let policy = RetryPolicy {
        max_retries: 3,
        ..RetryPolicy::default()
    };
    let mut client = rack.client(0).with_policy(policy);

    let mut model: Vec<KeyModel> = (0..KEYS).map(|_| KeyModel::new()).collect();
    let mut next_counter = 0u64;
    // Liveness mirror — the test issues every kill/restart itself. A
    // server serves iff it is alive and has been re-synced since its last
    // wipe; a controller cycle re-syncs every alive server.
    let mut alive = [true; SERVERS as usize];
    let mut synced = [true; SERVERS as usize];

    // After a membership-affecting step: any partition whose whole chain
    // is out of service right now has lost its data for good.
    let mark_lost = |rack: &Rack,
                     model: &mut Vec<KeyModel>,
                     alive: &[bool; SERVERS as usize],
                     synced: &[bool; SERVERS as usize]| {
        let Some(chains) = current_chains(rack) else {
            return;
        };
        for k in 0..KEYS {
            let key = Key::from_u64(k);
            let p = rack.addressing().partition_of(&key);
            let all_out = chains[p as usize]
                .iter()
                .all(|&s| !alive[s as usize] || !synced[s as usize]);
            if all_out {
                model[k as usize].anything = true;
            }
        }
    };

    for step in steps {
        match *step {
            Step::Put { k } => {
                let key = Key::from_u64(u64::from(k));
                next_counter += 1;
                let m = &mut model[k as usize];
                m.max_issued = next_counter;
                match client.put_with_retry(key, val(next_counter)).response {
                    Some(resp) => {
                        prop_assert!(matches!(resp.response(), Response::PutAck { .. }));
                        m.commit(Some(next_counter));
                    }
                    None => m.admit(Some(next_counter)),
                }
            }
            Step::Delete { k } => {
                let key = Key::from_u64(u64::from(k));
                let m = &mut model[k as usize];
                match client.delete_with_retry(key).response {
                    Some(resp) => {
                        prop_assert!(matches!(resp.response(), Response::DeleteAck { .. }));
                        m.commit(None);
                    }
                    None => m.admit(None),
                }
            }
            Step::Get { k } => {
                let key = Key::from_u64(u64::from(k));
                let Some(resp) = client.get_with_retry(key).response else {
                    continue; // a degraded chain may time reads out
                };
                let observed = match resp.response() {
                    Response::Value { value, .. } => Some(counter_of(value)),
                    Response::NotFound { .. } => None,
                    other => {
                        prop_assert!(false, "unexpected get response {other:?}");
                        unreachable!()
                    }
                };
                let m = &model[k as usize];
                if let Some(c) = observed {
                    prop_assert!(
                        c <= m.max_issued,
                        "key {}: read counter {} was never issued (max {})",
                        k,
                        c,
                        m.max_issued
                    );
                }
                if !m.anything {
                    prop_assert!(
                        m.admissible.contains(&observed),
                        "key {}: lost acked write — read {:?}, admissible {:?}",
                        k,
                        observed,
                        m.admissible
                    );
                }
            }
            Step::Cache { k } => {
                // Cache-plane only: must never change what reads observe.
                rack.populate_cache([Key::from_u64(u64::from(k))]);
            }
            Step::Kill { s } => {
                if factor == 1 {
                    continue; // f = 0 tolerates no failures; no repair plane
                }
                rack.kill_server(u32::from(s));
                alive[s as usize] = false;
                mark_lost(&rack, &mut model, &alive, &synced);
            }
            Step::Restart { s } => {
                if factor == 1 {
                    continue;
                }
                // Restarting wipes the store, even if the server was
                // healthy — a crash-restart loses local state.
                rack.restart_server(u32::from(s));
                alive[s as usize] = true;
                synced[s as usize] = false;
                mark_lost(&rack, &mut model, &alive, &synced);
            }
            Step::Controller => {
                rack.advance(1_000_000);
                rack.tick();
                rack.run_controller();
                for s in 0..SERVERS as usize {
                    if alive[s] {
                        synced[s] = true; // repair re-synced every survivor
                    }
                }
                assert_version_monotonicity(&rack)?;
            }
        }
    }

    // Convergence: bring everything back, run one repair, and the rack
    // must be whole again — full chains, every key readable, versions
    // monotone, reads admissible.
    for s in 0..SERVERS {
        if !alive[s as usize] {
            rack.restart_server(s);
        }
    }
    rack.advance(1_000_000);
    rack.tick();
    rack.run_controller();
    assert_version_monotonicity(&rack)?;
    if factor > 1 {
        let report = RackReport::capture(&rack);
        prop_assert_eq!(
            report.replication.full_chains,
            SERVERS as usize,
            "repair did not converge: {:?}",
            report.replication
        );
        prop_assert_eq!(report.replication.unserved_partitions, 0);
    }
    for k in 0..KEYS {
        let out = client.get_with_retry(Key::from_u64(k));
        let Some(resp) = out.response else {
            prop_assert!(false, "key {}: unreadable after full recovery", k);
            unreachable!()
        };
        let observed = match resp.response() {
            Response::Value { value, .. } => Some(counter_of(value)),
            Response::NotFound { .. } => None,
            other => {
                prop_assert!(false, "unexpected get response {other:?}");
                unreachable!()
            }
        };
        let m = &model[k as usize];
        if let Some(c) = observed {
            prop_assert!(c <= m.max_issued, "key {}: unissued counter {}", k, c);
        }
        if !m.anything {
            prop_assert!(
                m.admissible.contains(&observed),
                "key {}: final read {:?} outside admissible {:?}",
                k,
                observed,
                m.admissible
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// Chain invariants hold for every replication factor under arbitrary
    /// kill/restart/repair schedules interleaved with the workload.
    #[test]
    fn chain_invariants_hold(
        factor in 1u32..=4,
        steps in proptest::collection::vec(step_strategy(), 1..48),
    ) {
        check_chain(factor, &steps)?;
    }
}

/// Deterministic regression: killing servers 0 and 1 wipes out partition
/// 0's entire factor-2 chain ([0, 1]) — a genuine f+1-failure data loss
/// that trips the "anything" downgrade for its keys — and the rack must
/// still repair back to full, servable (if emptied) chains.
#[test]
fn whole_chain_loss_recovers_empty_but_serving() {
    let steps = [
        Step::Put { k: 0 },
        Step::Kill { s: 0 },
        Step::Kill { s: 1 },
        Step::Controller,
        Step::Restart { s: 0 },
        Step::Restart { s: 1 },
        Step::Controller,
        Step::Get { k: 0 },
    ];
    check_chain(2, &steps).expect("invariants hold across total chain loss");
}
