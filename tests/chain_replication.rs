//! Deterministic integration tests of chain-replicated writes (NetChain
//! direction): the happy path — a write travels switch → head → tail and
//! acks from the tail commit, reads steer to the tail, the cache is only
//! revalidated by a tail commit — and the full failover lifecycle: kill
//! the tail, controller splices it out and promotes the head, the rack
//! keeps serving, and the restarted node is wiped, re-synced and rejoined
//! as tail.
//!
//! The randomized counterparts live in `chaos.rs` (seeded fault sweeps
//! with mid-workload kills) and `chain_props.rs` (arbitrary factors and
//! kill schedules).

use netcache::{Rack, RackConfig, RackHandle, RackReport};
use netcache_client::Response;
use netcache_proto::{Key, Value};

#[test]
fn replicated_rack_serves_reads_and_writes() {
    let mut config = RackConfig::small(4);
    config.replication_factor = 2;
    config.controller.cache_capacity = 8;
    let rack = Rack::new(config).expect("valid config");
    rack.load_dataset(16, 32);

    let mut c = rack.client(0);
    // Uncached read comes from the tail.
    let r = c.get(Key::from_u64(3)).expect("reply");
    assert_eq!(r.value().unwrap(), &Value::for_item(3, 32));

    // A write travels the chain and acks from the tail commit.
    let resp = c
        .put(Key::from_u64(3), Value::filled(0xaa, 32))
        .expect("ack");
    assert!(
        matches!(resp.response(), Response::PutAck { .. }),
        "{resp:?}"
    );
    let r = c.get(Key::from_u64(3)).expect("reply");
    assert_eq!(r.value().unwrap(), &Value::filled(0xaa, 32));

    // Both replicas applied it.
    let home = rack.addressing().home_of(&Key::from_u64(3));
    for s in rack.addressing().chain_servers(home.server, 2) {
        let item = rack
            .server(s)
            .fetch(&Key::from_u64(3))
            .expect("replica has it");
        assert_eq!(item.value, Value::filled(0xaa, 32));
    }

    // Cached keys serve from the switch and stay fresh across writes.
    rack.populate_cache([Key::from_u64(3)]);
    let r = c.get(Key::from_u64(3)).expect("reply");
    assert!(r.served_by_cache(), "{r:?}");
    c.put(Key::from_u64(3), Value::filled(0xbb, 32))
        .expect("ack");
    let r = c.get(Key::from_u64(3)).expect("reply");
    assert_eq!(r.value().unwrap(), &Value::filled(0xbb, 32));
    assert!(r.served_by_cache(), "commit should revalidate: {r:?}");

    // Delete through the chain.
    c.delete(Key::from_u64(3)).expect("ack");
    let r = c.get(Key::from_u64(3)).expect("reply");
    assert!(matches!(r.response(), Response::NotFound { .. }), "{r:?}");

    let report = RackReport::capture(&rack);
    assert!(report.switch.chain_writes >= 3, "{:?}", report.switch);
    assert!(report.switch.chain_commits >= 3, "{:?}", report.switch);
    assert_eq!(report.replication.factor, 2);
    assert_eq!(report.replication.full_chains, 4);
}

#[test]
fn kill_and_failover_keeps_serving() {
    let mut config = RackConfig::small(4);
    config.replication_factor = 2;
    config.controller.cache_capacity = 8;
    let rack = Rack::new(config).expect("valid config");
    rack.load_dataset(16, 32);

    let key = Key::from_u64(5);
    let home = rack.addressing().home_of(&key);
    let tail = (home.server + 1) % 4;

    let mut c = rack.client(0);
    c.put(key, Value::filled(0x11, 32)).expect("ack");

    // Kill the tail; before repair the partition can't ack (reads hit the
    // dead tail), after repair the head serves alone.
    rack.kill_server(tail);
    rack.run_controller();
    let r = c.get(key).expect("reply after failover");
    assert_eq!(r.value().unwrap(), &Value::filled(0x11, 32));
    c.put(key, Value::filled(0x22, 32))
        .expect("ack after failover");
    let r = c.get(key).expect("reply");
    assert_eq!(r.value().unwrap(), &Value::filled(0x22, 32));

    // Restart: wiped, re-synced from the surviving tail, re-joined as tail.
    rack.restart_server(tail);
    rack.run_controller();
    let item = rack.server(tail).fetch(&key).expect("resynced");
    assert_eq!(item.value, Value::filled(0x22, 32));
    let r = c.get(key).expect("reply");
    assert_eq!(r.value().unwrap(), &Value::filled(0x22, 32));

    let report = RackReport::capture(&rack);
    assert!(report.controller.chain_failovers >= 1);
    assert!(report.controller.chain_resyncs >= 1);
    assert_eq!(
        report.replication.full_chains, 4,
        "{:?}",
        report.replication
    );
}
