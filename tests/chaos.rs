//! Chaos suite: mixed read/write workloads replayed across many seeds of
//! the probabilistic network fault model (loss + duplication + reordering
//! + delay), asserting the §4.3 coherence guarantees end to end:
//!
//! - **Freshness**: every acked read reflects at least the latest acked
//!   write to its key at the moment the read was issued, and never a value
//!   newer than anything issued.
//! - **Bounded retries**: no request exceeds its [`RetryPolicy`] budget,
//!   and below heavy loss no request is abandoned at all.
//! - **Observability**: the injected faults and the client's reaction
//!   (retransmissions, suppressed duplicates) surface in [`RackReport`].
//!
//! Every scenario is exactly reproducible: the fault sequence and the
//! workload derive from one seed, adjustable via `NETCACHE_TEST_SEED`.

use netcache::{
    seed_from_env, FaultConfig, LargeValueOps, Rack, RackConfig, RackHandle, RackReport,
    RetryPolicy,
};
use netcache_client::Response;
use netcache_proto::{Key, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Distinct keys in the workload; the cache covers the first half.
const KEYS: u64 = 16;
/// Mixed operations per scenario, after the initial seeding puts.
const OPS: usize = 200;
/// Scenarios per loss level (3 levels × 12 = 36 distinct seeds).
const SEEDS_PER_LEVEL: u64 = 12;

/// Values carry a big-endian write counter so reads can be checked for
/// staleness against the issue/ack history.
fn val(counter: u64) -> Value {
    Value::new(counter.to_be_bytes().to_vec()).expect("8 bytes fits")
}

fn counter_of(v: &Value) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&v.as_bytes()[..8]);
    u64::from_be_bytes(b)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The scenario seed for case `i` of the level with the given index. All
/// seeds across all levels are distinct; the base comes from
/// `NETCACHE_TEST_SEED` when set.
fn scenario_seed(level: u64, i: u64) -> u64 {
    splitmix64(seed_from_env(0xc4a0_5eed) ^ (level << 32) ^ i)
}

/// Per-key ground truth maintained by the (single, sequential) client.
#[derive(Clone, Copy, Default)]
struct KeyState {
    /// Highest write counter ever issued for this key (acked or not).
    max_issued: u64,
    /// Counter of the latest *acked* put, cleared by an acked delete.
    floor: Option<u64>,
}

/// What one scenario observed, for aggregate assertions and determinism
/// checks.
#[derive(Debug, PartialEq)]
struct Outcome {
    acked: u64,
    abandoned: u64,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
    delayed: u64,
    client_retries: u64,
    stale_replies: u64,
}

fn run_scenario(seed: u64, loss: f64) -> Outcome {
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 8;
    config.faults = FaultConfig {
        loss,
        duplicate: 0.05,
        reorder: 0.05,
        max_delay_ns: 300_000,
        seed,
    };
    let rack = Rack::new(config).expect("valid config");
    let policy = RetryPolicy::default();
    let mut client = rack.client(0).with_policy(policy.clone());
    let mut rng = StdRng::seed_from_u64(splitmix64(seed));

    let mut keys = [KeyState::default(); KEYS as usize];
    let mut next_counter = 0u64;
    let mut acked = 0u64;
    let mut abandoned = 0u64;

    // Seed every key with an initial value (under faults too), then cache
    // the first half of the keyspace so the workload mixes switch-served
    // and server-served reads.
    for k in 0..KEYS {
        next_counter += 1;
        keys[k as usize].max_issued = next_counter;
        let out = client.put_with_retry(Key::from_u64(k), val(next_counter));
        assert!(out.retries <= policy.max_retries);
        match out.response {
            Some(_) => keys[k as usize].floor = Some(next_counter),
            None => abandoned += 1,
        }
    }
    rack.populate_cache(
        (0..KEYS / 2).filter_map(|k| keys[k as usize].floor.map(|_| Key::from_u64(k))),
    );

    for _ in 0..OPS {
        let k = rng.random_range(0..KEYS);
        let key = Key::from_u64(k);
        let roll: f64 = rng.random();
        if roll < 0.6 {
            let out = client.get_with_retry(key);
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            let Some(resp) = out.response else {
                abandoned += 1;
                continue;
            };
            acked += 1;
            let st = keys[k as usize];
            match resp.response() {
                Response::Value { value, .. } => {
                    let c = counter_of(value);
                    assert!(
                        c <= st.max_issued,
                        "read counter {c} was never issued for this key \
                         (max {}, seed {seed:#x})",
                        st.max_issued
                    );
                    if let Some(f) = st.floor {
                        assert!(
                            c >= f,
                            "stale read: counter {c} < acked floor {f} (seed {seed:#x})"
                        );
                    }
                }
                Response::NotFound { .. } => {
                    assert!(
                        st.floor.is_none(),
                        "acked write {:?} vanished: read NotFound (seed {seed:#x})",
                        st.floor
                    );
                }
                other => panic!("unexpected get response {other:?}"),
            }
        } else if roll < 0.9 {
            next_counter += 1;
            keys[k as usize].max_issued = next_counter;
            let out = client.put_with_retry(key, val(next_counter));
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            match out.response {
                Some(resp) => {
                    assert!(matches!(resp.response(), Response::PutAck { .. }));
                    keys[k as usize].floor = Some(next_counter);
                    acked += 1;
                }
                None => abandoned += 1,
            }
        } else {
            let out = client.delete_with_retry(key);
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            match out.response {
                Some(resp) => {
                    assert!(matches!(resp.response(), Response::DeleteAck { .. }));
                    keys[k as usize].floor = None;
                    acked += 1;
                }
                None => {
                    abandoned += 1;
                    // The delete may have been applied with every ack lost:
                    // the key's fate is unknown, so the floor no longer
                    // bounds reads (an abandoned *put* is harmless here —
                    // it can only raise the counter above the old floor).
                    keys[k as usize].floor = None;
                }
            }
        }
    }

    let report = RackReport::capture(&rack);
    assert_eq!(report.abandoned_requests, abandoned);
    Outcome {
        acked,
        abandoned,
        dropped: report.faults.dropped,
        duplicated: report.faults.duplicated,
        reordered: report.faults.reordered,
        delayed: report.faults.delayed,
        client_retries: report.client_retries,
        stale_replies: report.stale_replies,
    }
}

/// Runs every seed of one loss level and checks the aggregate: faults were
/// actually injected, the client actually retried, and the abandoned
/// fraction stays within `max_abandoned_frac`.
fn run_level(level: u64, loss: f64, max_abandoned_frac: f64) {
    let mut total = Outcome {
        acked: 0,
        abandoned: 0,
        dropped: 0,
        duplicated: 0,
        reordered: 0,
        delayed: 0,
        client_retries: 0,
        stale_replies: 0,
    };
    for i in 0..SEEDS_PER_LEVEL {
        let out = run_scenario(scenario_seed(level, i), loss);
        total.acked += out.acked;
        total.abandoned += out.abandoned;
        total.dropped += out.dropped;
        total.duplicated += out.duplicated;
        total.reordered += out.reordered;
        total.delayed += out.delayed;
        total.client_retries += out.client_retries;
        total.stale_replies += out.stale_replies;
    }
    let requests = total.acked + total.abandoned;
    assert!(total.dropped > 0, "no loss injected: {total:?}");
    assert!(total.duplicated > 0, "no duplication injected: {total:?}");
    assert!(
        total.reordered + total.delayed > 0,
        "no reordering/delay injected: {total:?}"
    );
    assert!(total.client_retries > 0, "client never retried: {total:?}");
    assert!(
        total.stale_replies > 0,
        "no duplicate replies suppressed: {total:?}"
    );
    assert!(
        (total.abandoned as f64) <= (requests as f64) * max_abandoned_frac,
        "{} of {} requests abandoned (budget {:.1}%)",
        total.abandoned,
        requests,
        max_abandoned_frac * 100.0
    );
}

#[test]
fn chaos_light_loss() {
    run_level(1, 0.01, 0.0);
}

#[test]
fn chaos_moderate_loss() {
    run_level(2, 0.05, 0.0);
}

#[test]
fn chaos_heavy_loss() {
    // At 20% per-crossing loss a server round trip survives one attempt
    // with probability ≈ 0.8⁴ ≈ 0.41, so a 16-retry budget still abandons
    // ~0.59¹⁷ ≈ 10⁻⁴ of requests; allow 1% for headroom.
    run_level(3, 0.20, 0.01);
}

#[test]
fn chaos_is_deterministic_per_seed() {
    let seed = scenario_seed(4, 0);
    let a = run_scenario(seed, 0.10);
    let b = run_scenario(seed, 0.10);
    assert_eq!(a, b, "same seed must replay the same faults and outcomes");
}

#[test]
fn clean_network_needs_no_retries() {
    let out = run_scenario(scenario_seed(5, 0), 0.0);
    // duplicate/reorder/delay are still enabled; only loss is off, so
    // every request must succeed on some attempt without abandonment.
    assert_eq!(out.abandoned, 0);
    assert_eq!(out.dropped, 0);
}

// ---------------------------------------------------------------------------
// Chain-replication chaos (NetChain direction): kill and restart replicas
// mid-workload while the probabilistic fault model keeps dropping packets.
// ---------------------------------------------------------------------------

/// Ground truth for one key under replicated writes. A plain "latest acked
/// counter" floor is not enough here: a chain write the client abandons may
/// have committed at a *prefix* of the chain (head applied, tail never
/// reached), and a later failover that promotes the head legitimately
/// exposes it. So the model keeps the full admissible set — an acked op
/// collapses it to a singleton, an abandoned op widens it — exactly like
/// the model-check suite, plus the never-newer-than-issued bound.
#[derive(Clone)]
struct ChainKeyState {
    /// Highest write counter ever issued for this key (acked or not).
    max_issued: u64,
    /// Observations a read may legally return: `Some(counter)` or `None`.
    admissible: Vec<Option<u64>>,
}

impl ChainKeyState {
    fn new() -> Self {
        ChainKeyState {
            max_issued: 0,
            admissible: vec![None],
        }
    }

    /// An acked op resolves all uncertainty: the tail committed, so every
    /// chain member applied it and no failover can roll it back.
    fn commit(&mut self, v: Option<u64>) {
        self.admissible = vec![v];
    }

    /// An abandoned op may have been applied at a prefix of the chain and
    /// survive a failover, or may have been lost entirely.
    fn admit(&mut self, v: Option<u64>) {
        if !self.admissible.contains(&v) {
            self.admissible.push(v);
        }
    }

    fn check(&self, observed: Option<u64>, seed: u64, k: u64) {
        if let Some(c) = observed {
            assert!(
                c <= self.max_issued,
                "read counter {c} was never issued for key {k} (max {}, seed {seed:#x})",
                self.max_issued
            );
        }
        assert!(
            self.admissible.contains(&observed),
            "lost acked write on key {k}: read {observed:?}, admissible \
             {:?} (seed {seed:#x})",
            self.admissible
        );
    }
}

/// What one chain scenario observed, for aggregate assertions and the
/// determinism check.
#[derive(Debug, PartialEq)]
struct ChainOutcome {
    acked: u64,
    abandoned: u64,
    failovers: u64,
    resyncs: u64,
    full_chains: usize,
}

/// Replays a mixed workload against a replicated rack while killing a
/// replica a quarter of the way in and restarting it at the halfway mark,
/// with a controller cycle every 8 ops so failure detection, chain repair
/// and re-sync all run mid-stream. Every acked read must land inside the
/// admissible set — in particular, no acknowledged write may ever be lost
/// across the failover.
///
/// The victim is chosen relative to a partition that actually holds
/// workload keys (the hash partitioner can leave small-keyspace partitions
/// empty): `victim_offset` positions it inside that partition's chain —
/// offset 1 is the tail at factor 2 and the middle replica at factor 3 —
/// so the kill is guaranteed to land on a chain the workload exercises.
fn run_chain_scenario(seed: u64, loss: f64, factor: u32, victim_offset: u32) -> ChainOutcome {
    let mut config = RackConfig::small(4);
    config.replication_factor = factor;
    config.controller.cache_capacity = 8;
    config.faults = FaultConfig {
        loss,
        duplicate: 0.05,
        reorder: 0.05,
        max_delay_ns: 300_000,
        seed,
    };
    let rack = Rack::new(config).expect("valid config");
    let policy = RetryPolicy::default();
    let mut client = rack.client(0).with_policy(policy.clone());
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0xc4a1));

    // Anchor the kill to the chain of key 0's partition, which the
    // workload definitely hits.
    let anchor = rack.addressing().partition_of(&Key::from_u64(0));
    let victim = (anchor + victim_offset) % 4;

    let mut keys: Vec<ChainKeyState> = (0..KEYS).map(|_| ChainKeyState::new()).collect();
    let mut next_counter = 0u64;
    let mut acked = 0u64;
    let mut abandoned = 0u64;

    for k in 0..KEYS {
        next_counter += 1;
        keys[k as usize].max_issued = next_counter;
        let out = client.put_with_retry(Key::from_u64(k), val(next_counter));
        assert!(out.retries <= policy.max_retries);
        match out.response {
            Some(_) => keys[k as usize].commit(Some(next_counter)),
            None => {
                keys[k as usize].admit(Some(next_counter));
                abandoned += 1;
            }
        }
    }
    rack.populate_cache((0..KEYS / 2).map(Key::from_u64));

    let kill_at = OPS / 4;
    let restart_at = OPS / 2;
    for i in 0..OPS {
        if i == kill_at {
            rack.kill_server(victim);
        }
        if i == restart_at {
            rack.restart_server(victim);
        }
        if i % 8 == 0 {
            rack.run_controller();
        }
        let k = rng.random_range(0..KEYS);
        let key = Key::from_u64(k);
        let roll: f64 = rng.random();
        if roll < 0.6 {
            let out = client.get_with_retry(key);
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            let Some(resp) = out.response else {
                abandoned += 1;
                continue;
            };
            acked += 1;
            let observed = match resp.response() {
                Response::Value { value, .. } => Some(counter_of(value)),
                Response::NotFound { .. } => None,
                other => panic!("unexpected get response {other:?}"),
            };
            keys[k as usize].check(observed, seed, k);
        } else if roll < 0.9 {
            next_counter += 1;
            keys[k as usize].max_issued = next_counter;
            let out = client.put_with_retry(key, val(next_counter));
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            match out.response {
                Some(resp) => {
                    assert!(matches!(resp.response(), Response::PutAck { .. }));
                    keys[k as usize].commit(Some(next_counter));
                    acked += 1;
                }
                None => {
                    keys[k as usize].admit(Some(next_counter));
                    abandoned += 1;
                }
            }
        } else {
            let out = client.delete_with_retry(key);
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            match out.response {
                Some(resp) => {
                    assert!(matches!(resp.response(), Response::DeleteAck { .. }));
                    keys[k as usize].commit(None);
                    acked += 1;
                }
                None => {
                    keys[k as usize].admit(None);
                    abandoned += 1;
                }
            }
        }
    }

    // Let repair finish (re-splice + re-sync the restarted node), then
    // sweep every key: whatever each read observes must be admissible.
    rack.run_controller();
    for k in 0..KEYS {
        let out = client.get_with_retry(Key::from_u64(k));
        let Some(resp) = out.response else {
            abandoned += 1;
            continue;
        };
        acked += 1;
        let observed = match resp.response() {
            Response::Value { value, .. } => Some(counter_of(value)),
            Response::NotFound { .. } => None,
            other => panic!("unexpected get response {other:?}"),
        };
        keys[k as usize].check(observed, seed, k);
    }

    let report = RackReport::capture(&rack);
    assert_eq!(report.abandoned_requests, abandoned, "seed {seed:#x}");
    assert_eq!(report.replication.factor, factor);
    ChainOutcome {
        acked,
        abandoned,
        failovers: report.controller.chain_failovers,
        resyncs: report.controller.chain_resyncs,
        full_chains: report.replication.full_chains,
    }
}

/// Runs several seeds of one chain-chaos level. Every scenario must splice
/// the victim out (failover), re-sync it back in, end with every chain at
/// full strength, and keep abandonment confined to the detection window
/// between the kill and the next controller cycle (plus ordinary loss).
fn run_chain_level(level: u64, factor: u32, victim: u32) {
    for i in 0..4 {
        let seed = scenario_seed(level, i);
        let out = run_chain_scenario(seed, 0.05, factor, victim);
        assert!(
            out.failovers >= 1,
            "victim was never spliced out (seed {seed:#x}): {out:?}"
        );
        assert!(
            out.resyncs >= 1,
            "restarted victim never re-synced (seed {seed:#x}): {out:?}"
        );
        assert_eq!(
            out.full_chains, 4,
            "repair did not converge to full chains (seed {seed:#x}): {out:?}"
        );
        assert!(
            out.acked > out.abandoned,
            "rack mostly unavailable (seed {seed:#x}): {out:?}"
        );
        // The kill is detected within 8 ops; everything else is ordinary
        // 5%-loss attrition that the 16-retry budget absorbs.
        let requests = out.acked + out.abandoned;
        assert!(
            out.abandoned <= requests / 5,
            "abandonment beyond the detection window (seed {seed:#x}): {out:?}"
        );
    }
}

/// Factor 2, offset 1: the *tail* of a populated partition's chain dies
/// mid-workload (its reads dead-end until repair promotes the head; the
/// same server is head of the next chain, killing its writes too). Acked
/// writes must survive — the head holds everything the tail committed.
#[test]
fn chaos_chain_kill_tail_replica_under_loss() {
    run_chain_level(7, 2, 1);
}

/// Factor 3, offset 1: a *mid-chain* replica of a populated partition dies
/// mid-workload (writes stall at the head→mid hop until repair), plus tail
/// duty for the preceding chain and head duty for the next. Splicing the
/// middle out must leave head→tail forwarding intact.
#[test]
fn chaos_chain_kill_mid_replica_under_loss() {
    run_chain_level(8, 3, 1);
}

/// The whole chain scenario — faults, kill/restart schedule, repair,
/// observations — is a pure function of the seed.
#[test]
fn chaos_chain_is_deterministic_per_seed() {
    let seed = scenario_seed(9, 0);
    let a = run_chain_scenario(seed, 0.05, 2, 1);
    let b = run_chain_scenario(seed, 0.05, 2, 1);
    assert_eq!(a, b, "same seed must replay the same chain outcomes");
}

// ---------------------------------------------------------------------------
// Multi-rack chaos (DistCache direction): kill an entire leaf rack
// mid-workload while the per-rack fault models keep dropping packets, and
// check that spine-cached reads of the dead rack's keys stay alive and
// §4.3-fresh while everything that must cross the dead ToR abandons
// cleanly instead of going stale.
// ---------------------------------------------------------------------------

/// What one multi-rack chaos scenario observed.
#[derive(Debug, PartialEq)]
struct MultiRackOutcome {
    acked: u64,
    abandoned: u64,
    /// Packets the fabric dropped at the dead rack's boundary.
    dead_drops: u64,
    /// Acked reads of victim-owned keys *while the victim rack was dead* —
    /// only the spine layer can have served these.
    outage_spine_reads: u64,
    spine_hits: u64,
    client_retries: u64,
}

/// Replays a mixed workload against a 4-rack × 2-spine fabric under loss,
/// killing the leaf rack that owns key 0 a quarter of the way in (so the
/// victim is guaranteed to own populated, workload-hot partitions) and —
/// when `restart` is set — bringing it back at the halfway mark.
///
/// Ground truth is the same admissible-set model the chain suite uses: an
/// acked op collapses a key's admissible observations to a singleton, an
/// abandoned op widens it (a write dropped at the dead ToR never commits,
/// but a write whose *ack* was lost did — the set covers both). On top of
/// that, §4.3 demands that a read served by a cache copy is never staler
/// than the latest acked write, which the admissible check enforces: the
/// spine invalidates its copy before forwarding any write toward the dead
/// rack, so a spine-served read is either pre-write-fresh or the read
/// abandons — it must never answer with the overwritten value.
fn run_multirack_scenario(seed: u64, loss: f64, restart: bool) -> MultiRackOutcome {
    use netcache_sim::{MultiRack, MultiRackConfig};

    let mr = MultiRack::new(MultiRackConfig {
        racks: 4,
        spines: 2,
        servers_per_rack: 2,
        num_keys: KEYS,
        value_len: 8,
        leaf_cache_items: 8,
        // Ample spine capacity: every key fits, so membership churn can
        // never evict a valid copy the outage assertions depend on.
        spine_cache_items: 2 * KEYS as usize,
        faults: FaultConfig {
            loss,
            duplicate: 0.05,
            reorder: 0.05,
            max_delay_ns: 300_000,
            seed,
        },
        seed,
        ..MultiRackConfig::default()
    })
    .expect("valid multirack config");
    let policy = RetryPolicy::default();
    let mut client = mr.client(0).with_policy(policy.clone());
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0xd15c));

    // Victim-anchoring: kill the rack that owns key 0, so the outage is
    // guaranteed to hit partitions the workload exercises.
    let victim = mr.rack_of(&Key::from_u64(0));

    let mut keys: Vec<ChainKeyState> = (0..KEYS).map(|_| ChainKeyState::new()).collect();
    let mut next_counter = 0u64;
    let mut acked = 0u64;
    let mut abandoned = 0u64;
    let mut outage_spine_reads = 0u64;

    for k in 0..KEYS {
        next_counter += 1;
        keys[k as usize].max_issued = next_counter;
        let out = client.put_with_retry(Key::from_u64(k), val(next_counter));
        assert!(out.retries <= policy.max_retries);
        match out.response {
            Some(_) => keys[k as usize].commit(Some(next_counter)),
            None => {
                keys[k as usize].admit(Some(next_counter));
                abandoned += 1;
            }
        }
    }
    // The seeding writes invalidated the pre-populated spine copies
    // (write-around, §4.3); a controller cycle re-fetches them so the
    // spine enters the outage with valid copies of the live values.
    mr.run_controller();

    let kill_at = OPS / 4;
    let restart_at = OPS / 2;
    for i in 0..OPS {
        if i == kill_at {
            mr.kill_rack(victim);
        }
        if restart && i == restart_at {
            mr.restart_rack(victim);
        }
        if i % 8 == 0 {
            mr.run_controller();
        }
        let k = rng.random_range(0..KEYS);
        let key = Key::from_u64(k);
        let roll: f64 = rng.random();
        // Key 0 — the victim anchor — is pinned read-only: no write ever
        // invalidates its spine copy, so at least one victim-owned key is
        // guaranteed to stay servable through the outage (the sweep below
        // always reads it while the rack is dead in the no-restart
        // levels). Every other key keeps the full mixed op distribution.
        if roll < 0.6 || k == 0 {
            let out = client.get_with_retry(key);
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            let Some(resp) = out.response else {
                abandoned += 1;
                continue;
            };
            acked += 1;
            if mr.is_killed(mr.rack_of(&key)) {
                // The home ToR is down; only the spine copy can answer.
                outage_spine_reads += 1;
            }
            let observed = match resp.response() {
                Response::Value { value, .. } => Some(counter_of(value)),
                Response::NotFound { .. } => None,
                other => panic!("unexpected get response {other:?}"),
            };
            keys[k as usize].check(observed, seed, k);
        } else if roll < 0.9 {
            next_counter += 1;
            keys[k as usize].max_issued = next_counter;
            let out = client.put_with_retry(key, val(next_counter));
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            match out.response {
                Some(resp) => {
                    assert!(matches!(resp.response(), Response::PutAck { .. }));
                    keys[k as usize].commit(Some(next_counter));
                    acked += 1;
                }
                None => {
                    keys[k as usize].admit(Some(next_counter));
                    abandoned += 1;
                }
            }
        } else {
            let out = client.delete_with_retry(key);
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            match out.response {
                Some(resp) => {
                    assert!(matches!(resp.response(), Response::DeleteAck { .. }));
                    keys[k as usize].commit(None);
                    acked += 1;
                }
                None => {
                    keys[k as usize].admit(None);
                    abandoned += 1;
                }
            }
        }
    }

    // Let repair settle (spine re-fetches whatever the outage invalidated),
    // then sweep every key: acked observations must be admissible. With the
    // rack restarted the sweep doubles as a recovery check; with it still
    // dead, victim-owned keys may only answer via the spine or abandon.
    mr.run_controller();
    for k in 0..KEYS {
        let out = client.get_with_retry(Key::from_u64(k));
        let Some(resp) = out.response else {
            abandoned += 1;
            continue;
        };
        acked += 1;
        if mr.is_killed(mr.rack_of(&Key::from_u64(k))) {
            outage_spine_reads += 1;
        }
        let observed = match resp.response() {
            Response::Value { value, .. } => Some(counter_of(value)),
            Response::NotFound { .. } => None,
            other => panic!("unexpected get response {other:?}"),
        };
        keys[k as usize].check(observed, seed, k);
    }

    let report = mr.report();
    assert_eq!(report.dead_racks, u32::from(!restart));
    assert_eq!(report.client_abandoned, abandoned, "seed {seed:#x}");
    MultiRackOutcome {
        acked,
        abandoned,
        dead_drops: report.dead_drops,
        outage_spine_reads,
        spine_hits: report.spine_hits,
        client_retries: report.client_retries,
    }
}

/// Runs several seeds of one multi-rack chaos level and checks the
/// aggregate: the outage actually dropped traffic at the dead boundary,
/// the spine actually kept some of the dead rack's reads alive, and
/// abandonment stays confined to what must cross the dead ToR plus
/// ordinary loss attrition.
fn run_multirack_level(level: u64, restart: bool, max_abandoned_frac: f64) {
    let mut total_dead_drops = 0u64;
    let mut total_outage_reads = 0u64;
    let mut total_acked = 0u64;
    let mut total_abandoned = 0u64;
    for i in 0..4 {
        let seed = scenario_seed(level, i);
        let out = run_multirack_scenario(seed, 0.05, restart);
        assert!(
            out.acked > out.abandoned,
            "fabric mostly unavailable (seed {seed:#x}): {out:?}"
        );
        assert!(out.spine_hits > 0, "spine never served (seed {seed:#x})");
        assert!(
            out.client_retries > 0,
            "client never retried (seed {seed:#x})"
        );
        total_dead_drops += out.dead_drops;
        total_outage_reads += out.outage_spine_reads;
        total_acked += out.acked;
        total_abandoned += out.abandoned;
    }
    assert!(
        total_dead_drops > 0,
        "no packet ever hit the dead rack's boundary"
    );
    assert!(
        total_outage_reads > 0,
        "the spine never served a dead rack's key during an outage"
    );
    let requests = total_acked + total_abandoned;
    assert!(
        (total_abandoned as f64) <= (requests as f64) * max_abandoned_frac,
        "{total_abandoned} of {requests} requests abandoned \
         (budget {:.0}%)",
        max_abandoned_frac * 100.0
    );
}

/// A whole leaf rack dies a quarter of the way in and comes back at the
/// halfway mark, under 5% loss. Spine-cached reads of its keys keep
/// serving §4.3-fresh values through the outage; writes toward it abandon
/// (never committing stale state), and recovery restores full service.
#[test]
fn chaos_multirack_rack_death_and_recovery_under_loss() {
    run_multirack_level(10, true, 0.25);
}

/// The rack never comes back: every surviving read of its keyspace for
/// the rest of the run — including the final sweep — can only have been
/// served by the spine layer, and must still be admissible.
#[test]
fn chaos_multirack_permanent_rack_death_under_loss() {
    run_multirack_level(11, false, 0.40);
}

/// The whole fabric scenario — per-rack fault models, the kill/restart
/// schedule, spine repair, observations — is a pure function of the seed.
#[test]
fn chaos_multirack_is_deterministic_per_seed() {
    let seed = scenario_seed(12, 0);
    let a = run_multirack_scenario(seed, 0.05, true);
    let b = run_multirack_scenario(seed, 0.05, true);
    assert_eq!(a, b, "same seed must replay the same fabric outcomes");
}

/// The same §4.3 freshness contract over the *real* loopback transport:
/// a seeded fault model drops, duplicates, reorders and delays real
/// datagrams while a sequential client interleaves writes and reads.
/// Every acked put must be visible to every subsequent acked get — the
/// write-through invalidation means no stale switch entry may answer
/// once the server has committed — and abandonment stays bounded by the
/// retry budget. Parameterized over the runtime backend so the uring
/// ring-buffer reuse path faces the same duplicate/reorder storm as the
/// batched one (a recycled provided buffer must never leak a stale
/// payload into a retransmitted reply).
fn chaos_udp_write_freshness(runtime: netcache::runtime::RuntimeKind, scenario: u64) {
    use netcache::udp::UdpRack;

    let seed = scenario_seed(6, scenario);
    let mut config = RackConfig::small(2);
    config.controller.cache_capacity = 8;
    config.faults = FaultConfig {
        loss: 0.05,
        duplicate: 0.05,
        reorder: 0.05,
        max_delay_ns: 2_000_000, // 2 ms, well inside the client timeout
        seed,
    };
    let rack = UdpRack::start_with_runtime(config, runtime).expect("loopback rack");
    rack.load_dataset(KEYS, 32);
    rack.populate_cache((0..KEYS / 2).map(Key::from_u64));

    let policy = RetryPolicy::loopback();
    let mut client = rack.client(0).with_policy(policy.clone());
    let mut rng = StdRng::seed_from_u64(splitmix64(seed));

    // Latest *acked* counter per key; None until the first acked put.
    let mut floor = [None::<u64>; KEYS as usize];
    let mut next_counter = 0u64;
    let mut abandoned = 0u64;
    let mut checked_reads = 0u64;

    for _ in 0..150 {
        let k = rng.random::<u64>() % KEYS;
        if rng.random::<f64>() < 0.4 {
            next_counter += 1;
            let out = client.put_with_retry(Key::from_u64(k), val(next_counter));
            assert!(out.retries <= policy.max_retries);
            match out.response {
                Some(c) => {
                    assert!(
                        matches!(c.clone().into_response(), Response::PutAck { .. }),
                        "put answered with {c:?} (seed {seed:#x})"
                    );
                    floor[k as usize] = Some(next_counter);
                }
                None => abandoned += 1,
            }
        } else {
            let out = client.get_with_retry(Key::from_u64(k));
            assert!(out.retries <= policy.max_retries);
            match out.response.map(|c| c.into_response()) {
                Some(Response::Value { value, .. }) => {
                    // One sequential writer: an acked read must carry
                    // exactly the latest acked write (retransmitted
                    // duplicates of older puts are deduplicated by the
                    // server and must not resurface).
                    if let Some(expect) = floor[k as usize] {
                        checked_reads += 1;
                        assert_eq!(
                            counter_of(&value),
                            expect,
                            "stale read on key {k} (seed {seed:#x})"
                        );
                    }
                }
                Some(Response::NotFound { .. }) => {
                    assert!(
                        floor[k as usize].is_none(),
                        "acked value for key {k} vanished (seed {seed:#x})"
                    );
                }
                Some(other) => panic!("get answered with {other:?} (seed {seed:#x})"),
                None => abandoned += 1,
            }
        }
    }

    // 5% per-crossing loss with a 6-attempt budget abandons almost
    // nothing; allow a small fraction for scheduling jitter on top.
    assert!(abandoned <= 7, "{abandoned}/150 requests abandoned");
    assert!(checked_reads > 20, "only {checked_reads} checked reads");
    let stats = rack.faults().stats();
    assert!(
        stats.dropped + stats.duplicated + stats.delayed > 0,
        "fault model never fired: {stats:?}"
    );
    rack.stop();
}

#[test]
fn chaos_udp_batched_write_freshness() {
    chaos_udp_write_freshness(netcache::runtime::RuntimeKind::Batched, 0);
}

/// The uring leg of the freshness matrix: multishot recv recycles
/// provided buffers across packets, so a duplicate/reorder storm is the
/// sharpest probe for a buffer handed back to the kernel before its
/// payload was fully copied out. Skips with a notice where the kernel
/// lacks io_uring so old-kernel CI stays green.
#[test]
fn chaos_udp_uring_write_freshness() {
    if !netcache::runtime::uring_available() {
        eprintln!("notice: io_uring unavailable on this kernel; uring chaos leg skipped");
        return;
    }
    chaos_udp_write_freshness(netcache::runtime::RuntimeKind::Uring, 1);
}

// ---------------------------------------------------------------------------
// Recirculation chaos (size-mixed, OrbitCache direction): kill and restart
// a replica with large values in flight — multi-pass recirculated items and
// chunked payloads — while the fault model keeps dropping packets.
// ---------------------------------------------------------------------------

/// Value length per key: 2 pipeline passes, the full 16-pass
/// recirculation cap, and a 3-chunk payload beyond it.
fn large_len(k: u64) -> usize {
    [300, netcache_proto::MAX_VALUE_LEN, 6_000][(k % 3) as usize]
}

/// Payload for (key, counter): counter big-endian in the first 8 bytes,
/// deterministic fill after, sized by [`large_len`].
fn large_payload(k: u64, counter: u64) -> Vec<u8> {
    let mut p = vec![0u8; large_len(k)];
    p[..8].copy_from_slice(&counter.to_be_bytes());
    let fill = counter.to_le_bytes();
    for (i, b) in p.iter_mut().enumerate().skip(8) {
        *b = (i as u8) ^ fill[i % 8];
    }
    p
}

/// What one large-value chaos scenario observed, for aggregate assertions
/// and the determinism check.
#[derive(Debug, PartialEq)]
struct LargeChaosOutcome {
    acked: u64,
    abandoned: u64,
    recirculations: u64,
}

/// Chain-replicated rack (factor 2) under loss: size-mixed keys see
/// interleaved `put_large`/`get_large` while the anchored replica is
/// killed a quarter of the way in and restarted at the halfway mark.
///
/// Every successful read's leading counter must sit in the admissible
/// set: an abandoned composite write may have applied any prefix of its
/// chunks, but the manifest is written *last*, so the observable counter
/// only flips once the write got all the way through — the same
/// commit/admit semantics as single-item chain writes. After repair, a
/// fully-acked overwrite of every key must read back byte for byte from
/// whatever mixture of switch cache and chain tails serves the
/// constituents: the §4.3 freshness guarantee extended to recirculated
/// and chunked values.
fn run_large_value_scenario(seed: u64, loss: f64) -> LargeChaosOutcome {
    const LKEYS: u64 = 6;
    let mut config = RackConfig::small(4);
    config.replication_factor = 2;
    config.controller.cache_capacity = 8;
    config.switch.hot_threshold = 8;
    config.faults = FaultConfig {
        loss,
        duplicate: 0.05,
        reorder: 0.05,
        max_delay_ns: 300_000,
        seed,
    };
    let rack = Rack::new(config).expect("valid config");
    let policy = RetryPolicy::default();
    let mut client = rack.client(0).with_policy(policy.clone());
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x14c4));

    // Anchor the kill to the chain of key 0's partition, as the plain
    // chain suite does.
    let anchor = rack.addressing().partition_of(&Key::from_u64(0));
    let victim = (anchor + 1) % 4;

    let mut keys: Vec<ChainKeyState> = (0..LKEYS).map(|_| ChainKeyState::new()).collect();
    let mut next_counter = 0u64;
    let mut acked = 0u64;
    let mut abandoned = 0u64;

    // Seed every key to a known committed state. Composite writes abort on
    // any lost constituent and rewriting the same chunks is idempotent, so
    // retry whole passes until one fully acks.
    for k in 0..LKEYS {
        next_counter += 1;
        keys[k as usize].max_issued = next_counter;
        let p = large_payload(k, next_counter);
        let stored = (0..100).any(|_| client.put_large(Key::from_u64(k), &p).is_some());
        assert!(stored, "seeding write never fully acked (seed {seed:#x})");
        keys[k as usize].commit(Some(next_counter));
    }
    // Cache the single-item bases up front (served by recirculation); the
    // chunked keys' manifests and continuations heat up via the sketch.
    rack.populate_cache(
        (0..LKEYS)
            .filter(|k| large_len(*k) <= netcache_proto::MAX_VALUE_LEN)
            .map(Key::from_u64),
    );

    let kill_at = OPS / 4;
    let restart_at = OPS / 2;
    for i in 0..OPS {
        if i == kill_at {
            rack.kill_server(victim);
        }
        if i == restart_at {
            rack.restart_server(victim);
        }
        if i % 8 == 0 {
            rack.run_controller();
        }
        let k = rng.random_range(0..LKEYS);
        let key = Key::from_u64(k);
        let roll: f64 = rng.random();
        if roll < 0.6 {
            match client.get_large(key) {
                Some((payload, _all_cached)) => {
                    acked += 1;
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&payload[..8]);
                    keys[k as usize].check(Some(u64::from_be_bytes(b)), seed, k);
                    assert_eq!(
                        payload.len(),
                        large_len(k),
                        "torn read length on key {k} (seed {seed:#x})"
                    );
                }
                None => abandoned += 1,
            }
        } else {
            next_counter += 1;
            keys[k as usize].max_issued = next_counter;
            let p = large_payload(k, next_counter);
            match client.put_large(key, &p) {
                Some(()) => {
                    keys[k as usize].commit(Some(next_counter));
                    acked += 1;
                }
                None => {
                    keys[k as usize].admit(Some(next_counter));
                    abandoned += 1;
                }
            }
        }
    }

    // Let repair finish, then re-establish a committed state per key and
    // demand the exact bytes back (§4.3 freshness after failover).
    rack.run_controller();
    for k in 0..LKEYS {
        next_counter += 1;
        keys[k as usize].max_issued = next_counter;
        let p = large_payload(k, next_counter);
        let key = Key::from_u64(k);
        let stored = (0..100).any(|_| client.put_large(key, &p).is_some());
        assert!(
            stored,
            "post-repair write never fully acked (seed {seed:#x})"
        );
        keys[k as usize].commit(Some(next_counter));
        let (back, _) = (0..100)
            .find_map(|_| client.get_large(key))
            .unwrap_or_else(|| panic!("post-repair read never acked (seed {seed:#x})"));
        assert_eq!(
            back, p,
            "stale or torn read after repair on key {k} (seed {seed:#x})"
        );
    }

    LargeChaosOutcome {
        acked,
        abandoned,
        recirculations: rack.switch_stats().recirculations,
    }
}

/// Four seeds of the large-value kill/restart scenario at 5% loss. The
/// pre-cached multi-pass entries must actually be served by
/// recirculation, and the rack must stay mostly available.
#[test]
fn chaos_large_values_chain_kill_restart_under_loss() {
    for i in 0..4 {
        let seed = scenario_seed(13, i);
        let out = run_large_value_scenario(seed, 0.05);
        assert!(
            out.recirculations > 0,
            "multi-pass entries never served by recirculation (seed {seed:#x}): {out:?}"
        );
        assert!(
            out.acked > out.abandoned,
            "rack mostly unavailable (seed {seed:#x}): {out:?}"
        );
    }
}

/// The whole large-value scenario — faults, kill/restart schedule,
/// composite retries, observations — is a pure function of the seed.
#[test]
fn chaos_large_values_deterministic_per_seed() {
    let seed = scenario_seed(14, 0);
    let a = run_large_value_scenario(seed, 0.05);
    let b = run_large_value_scenario(seed, 0.05);
    assert_eq!(a, b, "same seed must replay the same outcomes");
}
