//! Property-based tests of the cache-coherence protocol and cross-crate
//! invariants.
//!
//! The central property (§4.3): **a read acknowledged after a write never
//! returns a value older than that write**, regardless of which packets
//! the network drops. NetCache's write-through-with-invalidation makes
//! this hold by construction — writes invalidate before they commit, and
//! only the server (the serialization point) re-validates.

use netcache::{Rack, RackConfig, RackHandle};
use netcache_proto::{Key, Op, Value};
use proptest::prelude::*;

/// A scripted step in a coherence scenario.
#[derive(Debug, Clone)]
enum Step {
    /// Write to key `k`. The scenario substitutes its own per-key fill
    /// counter so every write is distinguishable; the generated `fill` is
    /// kept so the checked-in regression seeds keep their exact shape.
    Put {
        k: u8,
        #[allow(dead_code)]
        fill: u8,
    },
    /// Read key `k` and check freshness.
    Get { k: u8 },
    /// Drop the next cache-update packet.
    DropUpdate,
    /// Drop the next cache-update ack.
    DropAck,
    /// Advance time and run retransmission timers.
    Tick,
    /// Run a controller cycle.
    Controller,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8, any::<u8>()).prop_map(|(k, fill)| Step::Put { k, fill }),
        (0u8..8).prop_map(|k| Step::Get { k }),
        Just(Step::DropUpdate),
        Just(Step::DropAck),
        Just(Step::Tick),
        Just(Step::Controller),
    ]
}

/// Runs one coherence scenario and checks every §4.3 visibility invariant.
///
/// Writes to a key whose cache update is in flight are *blocked* at the
/// server (§4.3) and commit later in FIFO order, so the contract is:
///
/// - a read returns the value of some issued write (or the initial value
///   before any write commits),
/// - reads are monotone: once a write's value has been observed (or its
///   Put synchronously acknowledged), no older value reappears,
/// - after all retransmission timers drain, the *last issued* write is
///   visible (blocked writes were released in order).
///
/// Shared by the property test and the deterministic regressions below.
fn check_coherence(steps: &[Step]) -> Result<(), TestCaseError> {
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 8;
    let rack = Rack::new(config).expect("valid config");
    rack.load_dataset(8, 32);
    rack.populate_cache((0..8).map(Key::from_u64));
    let mut client = rack.client(0);

    // Per key: fills issued so far (unique: 1, 2, 3, ...) and the
    // newest index known committed (observed or synchronously acked).
    let mut issued: [Vec<u8>; 8] = Default::default();
    let mut floor: [Option<usize>; 8] = [None; 8];

    for step in steps {
        match *step {
            Step::Put { k, fill: _ } => {
                let fill = (issued[k as usize].len() + 1) as u8;
                issued[k as usize].push(fill);
                // A blocked write (§4.3) produces no synchronous
                // reply; it commits later, in order.
                let resp = client.put(Key::from_u64(u64::from(k)), Value::filled(fill, 32));
                let acked = resp.is_some_and(|r| {
                    matches!(r.response(), netcache_client::Response::PutAck { .. })
                });
                if acked {
                    // A synchronous ack means this write committed.
                    let idx = issued[k as usize].len() - 1;
                    floor[k as usize] = Some(floor[k as usize].map_or(idx, |f| f.max(idx)));
                }
            }
            Step::Get { k } => {
                let resp = client
                    .get(Key::from_u64(u64::from(k)))
                    .expect("queries themselves are lossless here");
                let value = resp.value().expect("key always exists").clone();
                let ku = k as usize;
                if value == Value::for_item(u64::from(k), 32) {
                    // Initial value: only valid before any commit.
                    prop_assert!(
                        floor[ku].is_none(),
                        "key {}: initial value reappeared after commit",
                        k
                    );
                } else {
                    let fill = value.as_bytes()[0];
                    let idx = issued[ku].iter().position(|&f| f == fill);
                    let idx = match idx {
                        Some(i) => i,
                        None => {
                            prop_assert!(false, "key {}: unknown value {:#04x}", k, fill);
                            unreachable!()
                        }
                    };
                    prop_assert_eq!(value, Value::filled(fill, 32), "key {}: torn value", k);
                    if let Some(f) = floor[ku] {
                        prop_assert!(
                            idx >= f,
                            "key {}: stale read (index {} < committed floor {})",
                            k,
                            idx,
                            f
                        );
                    }
                    floor[ku] = Some(floor[ku].map_or(idx, |f| f.max(idx)));
                }
            }
            Step::DropUpdate => rack.faults().drop_next(Op::CacheUpdate, 1),
            Step::DropAck => rack.faults().drop_next(Op::CacheUpdateAck, 1),
            Step::Tick => {
                rack.advance(1_000_000);
                rack.tick();
            }
            Step::Controller => {
                rack.advance(100_000_000);
                rack.run_controller();
            }
        }
    }
    // Drain retransmissions and blocked-write releases; afterwards the
    // last issued write must be visible for every key.
    for _ in 0..8 {
        rack.advance(1_000_000);
        rack.tick();
    }
    for k in 0..8u64 {
        let resp = client.get(Key::from_u64(k)).expect("reply");
        let expected = match issued[k as usize].last() {
            Some(&fill) => Value::filled(fill, 32),
            None => Value::for_item(k, 32),
        };
        prop_assert_eq!(resp.value().expect("value"), &expected, "final key {}", k);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Reads never go backwards, under arbitrary interleavings of writes,
    /// reads, scripted packet loss, timer ticks and controller cycles.
    #[test]
    fn reads_never_stale(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        check_coherence(&steps)?;
    }

    /// The wire format round-trips arbitrary packets end-to-end. Empty
    /// values are included: constructors normalize `Some(empty)` to
    /// `None` (the shared wire encoding), so every constructed packet
    /// round-trips exactly.
    #[test]
    fn packet_roundtrip(
        op_idx in 0usize..5,
        seq in any::<u32>(),
        key in any::<u64>(),
        len in 0usize..=128,
        fill in any::<u8>(),
    ) {
        check_packet_roundtrip(op_idx, seq, key, len, fill)?;
    }

    /// The partitioner, client and controller agree on key homes.
    #[test]
    fn partitioning_agrees_across_components(key_id in any::<u64>(), servers in 1u32..64) {
        let mut config = RackConfig::small(servers.min(56));
        config.servers = servers.min(56);
        let rack = Rack::new(config).expect("valid config");
        let key = Key::from_u64(key_id);
        let home = rack.addressing().home_of(&key);
        prop_assert!(home.server < servers.min(56));
        prop_assert_eq!(u32::from(home.egress_port), home.server);
        // The client library must target the same server IP.
        let mut client = rack.client(0);
        let pkt = client.inner_mut().get(key);
        prop_assert_eq!(pkt.ipv4.dst, home.server_ip);
    }
}

fn check_packet_roundtrip(
    op_idx: usize,
    seq: u32,
    key: u64,
    len: usize,
    fill: u8,
) -> Result<(), TestCaseError> {
    use netcache_proto::Packet;
    let key = Key::from_u64(key);
    let pkt = match op_idx {
        0 => Packet::get_query(1, 0x0a000001, 0x0a000101, key, seq),
        1 => Packet::put_query(
            1,
            0x0a000001,
            0x0a000101,
            key,
            seq,
            Value::filled(fill, len),
        ),
        2 => Packet::delete_query(1, 0x0a000001, 0x0a000101, key, seq),
        3 => Packet::cache_update(0x0a000101, 0x0a0000fe, key, seq, Value::filled(fill, len)),
        _ => Packet::get_query(1, 0x0a000001, 0x0a000101, key, seq)
            .into_reply(Op::GetReplyHit, Some(Value::filled(fill, len))),
    };
    let parsed = Packet::parse(&pkt.deparse()).expect("round trip parses");
    prop_assert_eq!(parsed, pkt);
    Ok(())
}

/// Deterministic replay of the first committed regression
/// (`coherence_props.proptest-regressions`): a dropped cache update for a
/// blocked key, interleaved with writes to another key, then a second
/// write to the blocked key. The second write queues behind the pending
/// update; after the drain it must be the visible value — historically
/// the release path recommitted it *without* marking the key cached, so
/// the switch kept serving the first write's value.
#[test]
fn regression_drop_update_before_interleaved_puts() {
    check_coherence(&[
        Step::DropUpdate,
        Step::Put { k: 4, fill: 0 },
        Step::Put { k: 0, fill: 0 },
        Step::Put { k: 0, fill: 0 },
        Step::Put { k: 4, fill: 0 },
    ])
    .unwrap();
}

/// Deterministic replay of the second committed regression: a Put with an
/// *empty* value. `Some(empty)` and `None` share the wire encoding
/// `VLEN = 0`, so the constructors must normalize — otherwise the parsed
/// packet compares unequal to the built one.
#[test]
fn regression_empty_value_put_roundtrip() {
    check_packet_roundtrip(1, 0, 0, 0, 0).unwrap();
}
