//! Concurrency soak: many client threads, a controller thread and a timer
//! thread hammer one rack. Checks for deadlocks, lost updates on disjoint
//! keyspaces and internal consistency under contention.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use netcache::{Rack, RackConfig, RackHandle};
use netcache_proto::{Key, Value};

#[test]
fn threads_hammering_one_rack() {
    let mut config = RackConfig::small(8);
    config.controller.cache_capacity = 32;
    config.switch.hot_threshold = 8;
    let rack = Arc::new(Rack::new(config).expect("valid config"));
    rack.load_dataset(1_000, 64);
    rack.populate_cache((0..32).map(Key::from_u64));

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Four client threads, each owning a disjoint key range for writes
    // and reading shared hot keys.
    for t in 0..4u32 {
        let rack = Arc::clone(&rack);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut client = rack.client(t);
            let base = 2_000 + u64::from(t) * 100;
            let mut round = 0u8;
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                round = round.wrapping_add(1);
                for k in 0..10u64 {
                    let key = Key::from_u64(base + k);
                    let value = Value::filled(round ^ k as u8, 32);
                    client.put(key, value.clone()).expect("put ack");
                    let read = client.get(key).expect("reply");
                    assert_eq!(
                        read.value().expect("value"),
                        &value,
                        "thread {t} lost its own write"
                    );
                    // Shared hot read.
                    let hot = client.get(Key::from_u64(k)).expect("reply");
                    assert_eq!(
                        hot.value().expect("value"),
                        &Value::for_item(k, 64),
                        "hot key corrupted"
                    );
                    ops += 3;
                }
            }
            ops
        }));
    }

    // Controller thread: cycles + occasional reorganization.
    {
        let rack = Arc::clone(&rack);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut cycles = 0u64;
            while !stop.load(Ordering::Relaxed) {
                rack.advance(10_000_000);
                rack.run_controller();
                if cycles.is_multiple_of(7) {
                    rack.reorganize_cache();
                }
                cycles += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            cycles
        }));
    }

    // Timer thread: retransmissions.
    {
        let rack = Arc::clone(&rack);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut ticks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                rack.advance(1_000_000);
                rack.tick();
                ticks += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            ticks
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(800));
    stop.store(true, Ordering::Relaxed);
    let mut total_ops = 0u64;
    for h in handles {
        total_ops += h.join().expect("no thread panicked");
    }
    assert!(total_ops > 1_000, "soak did almost no work: {total_ops}");

    // Post-mortem consistency: every hot key still serves its dataset
    // value, and the switch still serves cache hits.
    let mut client = rack.client(0);
    let mut hits = 0;
    for k in 0..32u64 {
        let resp = client.get(Key::from_u64(k)).expect("reply");
        assert_eq!(resp.value().expect("value"), &Value::for_item(k, 64));
        if resp.served_by_cache() {
            hits += 1;
        }
    }
    assert!(hits > 0, "cache should still be serving after the soak");
}

/// The multi-pipe determinism contract (DESIGN.md §10): the switch only
/// serializes packets *within* an egress pipe, so a parallel run whose
/// threads each own one pipe's keys must leave the rack in exactly the
/// state a serial replay of the same per-pipe op sequences produces —
/// same per-op replies, same final values, same cache population, same
/// switch counters.
#[test]
fn parallel_pipes_match_serial_replay() {
    use netcache_proto::Op;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    const PIPES: usize = 4;
    const OPS_PER_THREAD: usize = 200;

    fn build_rack() -> Rack {
        let mut config = RackConfig::small(28);
        config.switch.pipes = PIPES;
        config.switch.ports = 36;
        config.controller.cache_capacity = 64;
        let rack = Rack::new(config).expect("valid config");
        rack.load_dataset(1_000, 64);
        rack
    }

    /// Keys homed in each pipe (disjoint pipes = disjoint egress locks
    /// *and* disjoint home servers).
    fn keys_per_pipe(rack: &Rack) -> Vec<Vec<Key>> {
        let mut buckets: Vec<Vec<Key>> = vec![Vec::new(); PIPES];
        for id in 0..1_000u64 {
            let key = Key::from_u64(id);
            let home = rack.addressing().home_of(&key);
            if buckets[home.pipe].len() < 8 {
                buckets[home.pipe].push(key);
            }
            if buckets.iter().all(|b| b.len() >= 8) {
                break;
            }
        }
        assert!(buckets.iter().all(|b| !b.is_empty()), "keys in all pipes");
        buckets
    }

    // Seeded per-thread op scripts, generated once and replayed on both
    // racks. Honors NETCACHE_TEST_SEED like the sim and chaos suites.
    let seed = netcache::seed_from_env(0x91e4);
    let scripts: Vec<Vec<(usize, Op, u8)>> = (0..PIPES)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9e37));
            (0..OPS_PER_THREAD)
                .map(|_| {
                    let r = rng.next_u64();
                    let op = if r % 4 == 0 { Op::Put } else { Op::Get };
                    ((r >> 8) as usize, op, (r >> 32) as u8)
                })
                .collect()
        })
        .collect();

    type OpResult = (bool, Option<Value>);
    fn run_script(
        client: &mut netcache::RackClient<'_>,
        bucket: &[Key],
        script: &[(usize, Op, u8)],
    ) -> Vec<OpResult> {
        script
            .iter()
            .map(|&(idx, op, byte)| {
                let key = bucket[idx % bucket.len()];
                let resp = match op {
                    Op::Put => client.put(key, Value::filled(byte, 64)),
                    _ => client.get(key),
                }
                .expect("reply");
                (resp.served_by_cache(), resp.value().cloned())
            })
            .collect()
    }

    // Parallel run: one thread per pipe. Clients are created on the main
    // thread so sequence-number epochs are assigned in a fixed order.
    let parallel = build_rack();
    let buckets = keys_per_pipe(&parallel);
    for bucket in &buckets {
        parallel.populate_cache(bucket.iter().take(4).copied());
    }
    let parallel_results: Vec<Vec<OpResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PIPES)
            .map(|t| {
                let mut client = parallel.client(t as u32);
                let bucket = &buckets[t];
                let script = &scripts[t];
                scope.spawn(move || run_script(&mut client, bucket, script))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let parallel_stats = parallel.switch_stats();

    // Serial replay: identical rack, same scripts, one pipe at a time.
    let serial = build_rack();
    let serial_buckets = keys_per_pipe(&serial);
    assert_eq!(buckets, serial_buckets, "identical racks, identical homes");
    for bucket in &serial_buckets {
        serial.populate_cache(bucket.iter().take(4).copied());
    }
    let serial_results: Vec<Vec<OpResult>> = (0..PIPES)
        .map(|t| {
            run_script(
                &mut serial.client(t as u32),
                &serial_buckets[t],
                &scripts[t],
            )
        })
        .collect();
    let serial_stats = serial.switch_stats();

    // Per-op replies match: same hit/miss classification, same values.
    assert_eq!(parallel_results, serial_results);

    // Final state matches: every touched key serves the same value from
    // the same place, and the cache population and counters agree.
    let mut pclient = parallel.client(0);
    let mut sclient = serial.client(0);
    for bucket in &buckets {
        for key in bucket {
            let p = pclient.get(*key).expect("reply");
            let s = sclient.get(*key).expect("reply");
            assert_eq!(p.value(), s.value(), "key {key} diverged");
            assert_eq!(p.served_by_cache(), s.served_by_cache(), "key {key}");
        }
    }
    assert_eq!(parallel.cached_keys(), serial.cached_keys());
    assert_eq!(parallel_stats.cache_hits, serial_stats.cache_hits);
    assert_eq!(parallel_stats.cache_misses, serial_stats.cache_misses);
    assert_eq!(
        parallel_stats.write_invalidations,
        serial_stats.write_invalidations
    );
    assert_eq!(parallel_stats.updates_applied, serial_stats.updates_applied);
}
