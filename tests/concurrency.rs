//! Concurrency soak: many client threads, a controller thread and a timer
//! thread hammer one rack. Checks for deadlocks, lost updates on disjoint
//! keyspaces and internal consistency under contention.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use netcache::{Rack, RackConfig};
use netcache_proto::{Key, Value};

#[test]
fn threads_hammering_one_rack() {
    let mut config = RackConfig::small(8);
    config.controller.cache_capacity = 32;
    config.switch.hot_threshold = 8;
    let rack = Arc::new(Rack::new(config).expect("valid config"));
    rack.load_dataset(1_000, 64);
    rack.populate_cache((0..32).map(Key::from_u64));

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Four client threads, each owning a disjoint key range for writes
    // and reading shared hot keys.
    for t in 0..4u32 {
        let rack = Arc::clone(&rack);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut client = rack.client(t);
            let base = 2_000 + u64::from(t) * 100;
            let mut round = 0u8;
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                round = round.wrapping_add(1);
                for k in 0..10u64 {
                    let key = Key::from_u64(base + k);
                    let value = Value::filled(round ^ k as u8, 32);
                    client.put(key, value.clone()).expect("put ack");
                    let read = client.get(key).expect("reply");
                    assert_eq!(
                        read.value().expect("value"),
                        &value,
                        "thread {t} lost its own write"
                    );
                    // Shared hot read.
                    let hot = client.get(Key::from_u64(k)).expect("reply");
                    assert_eq!(
                        hot.value().expect("value"),
                        &Value::for_item(k, 64),
                        "hot key corrupted"
                    );
                    ops += 3;
                }
            }
            ops
        }));
    }

    // Controller thread: cycles + occasional reorganization.
    {
        let rack = Arc::clone(&rack);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut cycles = 0u64;
            while !stop.load(Ordering::Relaxed) {
                rack.advance(10_000_000);
                rack.run_controller();
                if cycles.is_multiple_of(7) {
                    rack.reorganize_cache();
                }
                cycles += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            cycles
        }));
    }

    // Timer thread: retransmissions.
    {
        let rack = Arc::clone(&rack);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut ticks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                rack.advance(1_000_000);
                rack.tick();
                ticks += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            ticks
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(800));
    stop.store(true, Ordering::Relaxed);
    let mut total_ops = 0u64;
    for h in handles {
        total_ops += h.join().expect("no thread panicked");
    }
    assert!(total_ops > 1_000, "soak did almost no work: {total_ops}");

    // Post-mortem consistency: every hot key still serves its dataset
    // value, and the switch still serves cache hits.
    let mut client = rack.client(0);
    let mut hits = 0;
    for k in 0..32u64 {
        let resp = client.get(Key::from_u64(k)).expect("reply");
        assert_eq!(resp.value().expect("value"), &Value::for_item(k, 64));
        if resp.served_by_cache() {
            hits += 1;
        }
    }
    assert!(hits > 0, "cache should still be serving after the soak");
}
