//! Workspace integration tests: full-rack behaviour across crates.

use netcache::{Rack, RackConfig, RackHandle};
use netcache_proto::{Key, Op, Value};
use netcache_workload::QueryMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rack(servers: u32, cache: usize) -> Rack {
    let mut config = RackConfig::small(servers);
    config.controller.cache_capacity = cache;
    let rack = Rack::new(config).expect("valid rack config");
    rack.load_dataset(2_000, 64);
    rack
}

#[test]
fn every_loaded_key_is_readable() {
    let r = rack(8, 32);
    let mut c = r.client(0);
    for id in (0..2_000).step_by(97) {
        let resp = c.get(Key::from_u64(id)).expect("reply");
        assert_eq!(
            resp.value().expect("value"),
            &Value::for_item(id, 64),
            "key {id}"
        );
    }
}

#[test]
fn crud_lifecycle() {
    let r = rack(4, 16);
    let mut c = r.client(0);
    let key = Key::from_u64(5_000); // not in the loaded dataset
    assert!(c.get(key).expect("reply").not_found());
    c.put(key, Value::filled(1, 32)).expect("put ack");
    assert_eq!(
        c.get(key).expect("reply").value().expect("value"),
        &Value::filled(1, 32)
    );
    c.put(key, Value::filled(2, 32)).expect("put ack");
    assert_eq!(
        c.get(key).expect("reply").value().expect("value"),
        &Value::filled(2, 32)
    );
    c.delete(key).expect("delete ack");
    assert!(c.get(key).expect("reply").not_found());
}

#[test]
fn cache_hits_bypass_servers_entirely() {
    let r = rack(8, 32);
    r.populate_cache((0..32).map(Key::from_u64));
    let mut c = r.client(0);
    let gets_before: u64 = (0..8).map(|i| r.server_stats(i).gets).sum();
    for id in 0..32 {
        assert!(c.get(Key::from_u64(id)).expect("reply").served_by_cache());
    }
    let gets_after: u64 = (0..8).map(|i| r.server_stats(i).gets).sum();
    assert_eq!(
        gets_before, gets_after,
        "cached reads must not touch servers"
    );
}

#[test]
fn write_heavy_churn_stays_coherent() {
    // Interleave writes and reads on cached keys; the cache must never
    // return a value other than the most recently acknowledged write.
    let r = rack(4, 16);
    r.populate_cache((0..16).map(Key::from_u64));
    let mut c = r.client(0);
    for round in 0u8..20 {
        for id in 0..16u64 {
            let value = Value::filled(round.wrapping_mul(16).wrapping_add(id as u8), 48);
            c.put(Key::from_u64(id), value.clone()).expect("put ack");
            let read = c.get(Key::from_u64(id)).expect("reply");
            assert_eq!(
                read.value().expect("value"),
                &value,
                "round {round} key {id}"
            );
        }
    }
    // After the churn, reads are served by the cache again (updates
    // re-validated the entries).
    let resp = c.get(Key::from_u64(3)).expect("reply");
    assert!(
        resp.served_by_cache(),
        "cache should be valid after updates"
    );
}

#[test]
fn coherence_survives_scripted_update_loss() {
    let r = rack(4, 16);
    r.populate_cache((0..16).map(Key::from_u64));
    let mut c = r.client(0);
    // Lose every first transmission: retries (driven by tick) must heal.
    for id in 0..8u64 {
        r.faults().drop_next(Op::CacheUpdate, 1);
        c.put(Key::from_u64(id), Value::for_item(id + 100, 64))
            .expect("ack");
    }
    // Reads must serve the new values from the servers meanwhile.
    for id in 0..8u64 {
        let resp = c.get(Key::from_u64(id)).expect("reply");
        assert_eq!(resp.value().expect("value"), &Value::for_item(id + 100, 64));
    }
    // Heal and verify cache serves the new values.
    r.advance(1_000_000);
    r.tick();
    for id in 0..8u64 {
        let resp = c.get(Key::from_u64(id)).expect("reply");
        assert!(resp.served_by_cache(), "key {id} not healed");
        assert_eq!(resp.value().expect("value"), &Value::for_item(id + 100, 64));
    }
}

#[test]
fn controller_tracks_changing_popularity() {
    let mut config = RackConfig::small(8);
    config.controller.cache_capacity = 8;
    config.switch.hot_threshold = 8;
    let r = Rack::new(config).expect("valid config");
    r.load_dataset(1_000, 32);
    r.populate_cache((0..8).map(Key::from_u64));
    let mut c = r.client(0);

    // Shift the hotspot to keys 500..508.
    for _ in 0..40 {
        for id in 500..508u64 {
            c.get(Key::from_u64(id)).expect("reply");
        }
    }
    r.advance(1_100_000_000);
    r.run_controller();
    let cached_new = (500..508u64)
        .filter(|&id| r.is_cached(&Key::from_u64(id)))
        .count();
    assert!(
        cached_new >= 4,
        "only {cached_new} of the new hot keys cached"
    );
}

#[test]
fn zipf_traffic_mostly_hits_with_warm_cache() {
    let mut config = RackConfig::small(8);
    config.controller.cache_capacity = 64;
    let r = Rack::new(config).expect("valid config");
    r.load_dataset(2_000, 64);
    r.populate_cache((0..64).map(Key::from_u64));
    let mix = QueryMix::read_only(2_000, 0.99);
    let mut rng = StdRng::seed_from_u64(netcache::seed_from_env(11));
    let mut c = r.client(0);
    let n = 5_000;
    let mut hits = 0;
    for _ in 0..n {
        let q = mix.sample(&mut rng);
        if c.get(Key::from_u64(q.key_id()))
            .expect("reply")
            .served_by_cache()
        {
            hits += 1;
        }
    }
    let ratio = hits as f64 / n as f64;
    // Top-64 of 2000 at zipf-.99 is roughly half the mass.
    assert!(ratio > 0.35, "hit ratio {ratio}");
}

#[test]
fn per_client_isolation() {
    // Two clients with interleaved writes to disjoint keys never observe
    // each other's values.
    let r = rack(4, 16);
    let mut c0 = r.client(0);
    let mut c1 = r.client(1);
    for round in 0u8..10 {
        c0.put(Key::from_u64(3_000), Value::filled(round, 16))
            .expect("ack");
        c1.put(Key::from_u64(3_001), Value::filled(round ^ 0xff, 16))
            .expect("ack");
        assert_eq!(
            c0.get(Key::from_u64(3_000))
                .expect("reply")
                .value()
                .expect("v"),
            &Value::filled(round, 16)
        );
        assert_eq!(
            c1.get(Key::from_u64(3_001))
                .expect("reply")
                .value()
                .expect("v"),
            &Value::filled(round ^ 0xff, 16)
        );
    }
}

#[test]
fn switch_reboot_then_full_recovery() {
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 16;
    config.switch.hot_threshold = 8;
    let r = Rack::new(config).expect("valid config");
    r.load_dataset(500, 64);
    r.populate_cache((0..16).map(Key::from_u64));
    let mut c = r.client(0);
    assert!(c.get(Key::from_u64(1)).expect("reply").served_by_cache());

    r.reboot_switch();
    // Data still served (by servers), values intact.
    let resp = c.get(Key::from_u64(1)).expect("reply");
    assert!(!resp.served_by_cache());
    assert_eq!(resp.value().expect("v"), &Value::for_item(1, 64));

    // The cache refills through the normal heavy-hitter path.
    for _ in 0..40 {
        c.get(Key::from_u64(1)).expect("reply");
    }
    r.run_controller();
    assert!(c.get(Key::from_u64(1)).expect("reply").served_by_cache());
}

#[test]
fn values_of_every_size_round_trip_through_cache() {
    let r = rack(4, 16);
    let mut c = r.client(0);
    for (i, len) in [1usize, 15, 16, 17, 33, 64, 127, 128].iter().enumerate() {
        let key = Key::from_u64(9_000 + i as u64);
        let value = Value::for_item(i as u64, *len);
        c.put(key, value.clone()).expect("ack");
        r.populate_cache([key]);
        let resp = c.get(key).expect("reply");
        assert!(resp.served_by_cache(), "len {len}");
        assert_eq!(resp.value().expect("v"), &value, "len {len}");
    }
}
