//! Cross-transport differential tests: the payoff of the fabric layer.
//!
//! All rack deployments are thin transport drivers over the same
//! `netcache::fabric` core, so the same seed and workload must produce
//! the *same logical outcome* everywhere:
//!
//! - in-process [`Rack`] vs discrete-event [`RackSim`]: both are
//!   deterministic and fault-free here, so the comparison is exact —
//!   identical replies, identical final store contents, identical cache
//!   membership, identical switch/server/controller counters.
//! - loopback-UDP [`UdpRack`] vs in-process [`Rack`]: real sockets and
//!   threads make packet-level timing non-deterministic, so the
//!   comparison is aggregate — same replies, same final values, same
//!   cache membership.
//!
//! Seeded via `NETCACHE_TEST_SEED` (see `netcache::seed_from_env`).

use netcache::udp::UdpRack;
use netcache::{seed_from_env, Rack, RackHandle};
use netcache_client::Response;
use netcache_proto::{Key, Value};
use netcache_sim::{rack_config_for, RackSim, ScriptOp, SimConfig};
use netcache_workload::QueryMix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A small, fully deterministic experiment: fault-free network, 8
/// servers, a 64-item cache over a 2000-key Zipf workload.
fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        servers: 8,
        num_keys: 2_000,
        value_len: 64,
        cache_items: 64,
        seed,
        ..SimConfig::default()
    }
}

/// Builds an in-process rack assembled *identically* to what
/// [`RackSim::new`] builds internally: same switch program and seed, same
/// partitioning, same dataset, same hottest-keys cache population.
fn build_rack(config: &SimConfig) -> Rack {
    let rack = Rack::new(rack_config_for(config, true)).expect("valid sim rack config");
    let loaded = config
        .loaded_keys
        .map_or(config.num_keys, |k| k.min(config.num_keys));
    rack.load_dataset(loaded, config.value_len);
    let mix = QueryMix::new(
        config.num_keys,
        config.theta,
        config.write_ratio,
        config.write_skew,
    );
    if config.cache_items > 0 {
        let hottest: Vec<Key> = mix
            .popularity()
            .hottest(config.cache_items)
            .iter()
            .map(|&id| Key::from_u64(id))
            .collect();
        rack.populate_cache(hottest);
    }
    rack
}

/// A deterministic script: mostly-hot reads, a write mix, occasional
/// deletes, controller cycles and time advances. Total virtual time stays
/// far below the controller's 1-second budget/stats windows on both
/// transports, so clock-scale differences between them cannot change
/// control-plane decisions.
fn script(seed: u64, config: &SimConfig) -> Vec<ScriptOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ff);
    let hot = config.cache_items as u64;
    let mut ops = Vec::new();
    for i in 0..300u64 {
        let id = if rng.random::<f64>() < 0.7 {
            rng.random::<u64>() % hot
        } else {
            hot + rng.random::<u64>() % 200
        };
        let r = rng.random::<f64>();
        if r < 0.60 {
            ops.push(ScriptOp::Get(id));
        } else if r < 0.85 {
            ops.push(ScriptOp::Put(id, (i % 251) as u8 + 1));
        } else if r < 0.93 {
            ops.push(ScriptOp::Delete(id));
        } else {
            ops.push(ScriptOp::Controller);
        }
        if i % 41 == 0 {
            ops.push(ScriptOp::AdvanceMs(1));
        }
    }
    ops.push(ScriptOp::Controller);
    ops
}

/// Runs a script against the in-process rack, mirroring
/// [`RackSim::run_script`] op for op.
fn run_script_on_rack(rack: &Rack, ops: &[ScriptOp], value_len: usize) -> Vec<Option<Response>> {
    let mut client = rack.client(0);
    let mut results = Vec::new();
    for op in ops {
        match *op {
            ScriptOp::Get(id) => {
                results.push(client.get(Key::from_u64(id)).map(|r| r.into_response()));
            }
            ScriptOp::Put(id, fill) => {
                let value = Value::filled(fill, value_len);
                results.push(
                    client
                        .put(Key::from_u64(id), value)
                        .map(|r| r.into_response()),
                );
            }
            ScriptOp::Delete(id) => {
                results.push(client.delete(Key::from_u64(id)).map(|r| r.into_response()));
            }
            ScriptOp::Controller => {
                rack.run_controller();
            }
            ScriptOp::AdvanceMs(ms) => {
                rack.advance(ms * 1_000_000);
                rack.tick();
            }
        }
    }
    results
}

/// Snapshot of every store item, in key-id order, for exact comparison.
fn store_contents<H: RackHandle>(rack: &H, num_keys: u64) -> Vec<Option<(Value, u32)>> {
    (0..num_keys)
        .map(|id| {
            let key = Key::from_u64(id);
            let home = rack.addressing().home_of(&key);
            rack.server(home.server)
                .fetch(&key)
                .map(|item| (item.value, item.version))
        })
        .collect()
}

fn cache_membership<H: RackHandle>(rack: &H, num_keys: u64) -> Vec<u64> {
    (0..num_keys)
        .filter(|&id| rack.is_cached(&Key::from_u64(id)))
        .collect()
}

#[test]
fn rack_and_sim_agree_exactly() {
    let seed = seed_from_env(0x5eed_d1ff);
    let config = sim_config(seed);
    let ops = script(seed, &config);

    let mut sim = RackSim::new(config.clone()).expect("valid sim config");
    let rack = build_rack(&config);

    // Identically assembled: same pre-script state on both transports.
    assert_eq!(sim.switch_stats(), rack.switch_stats(), "seed {seed:#x}");
    assert_eq!(
        cache_membership(&sim, config.num_keys),
        cache_membership(&rack, config.num_keys),
        "initial cache membership diverged (seed {seed:#x})"
    );

    let sim_replies = sim.run_script(&ops);
    let rack_replies = run_script_on_rack(&rack, &ops, config.value_len);

    // Same replies, element-wise.
    assert_eq!(sim_replies.len(), rack_replies.len());
    for (i, (s, r)) in sim_replies.iter().zip(rack_replies.iter()).enumerate() {
        assert_eq!(s, r, "reply {i} diverged (seed {seed:#x}, op {:?})", ops[i]);
    }

    // Same final logical state: store contents, cache membership,
    // switch/server/controller counters.
    assert_eq!(
        store_contents(&sim, config.num_keys),
        store_contents(&rack, config.num_keys),
        "final store contents diverged (seed {seed:#x})"
    );
    assert_eq!(
        cache_membership(&sim, config.num_keys),
        cache_membership(&rack, config.num_keys),
        "final cache membership diverged (seed {seed:#x})"
    );
    assert_eq!(sim.cached_keys(), rack.cached_keys());
    assert_eq!(
        sim.switch_stats(),
        rack.switch_stats(),
        "switch counters diverged (seed {seed:#x})"
    );
    assert_eq!(
        sim.controller_stats(),
        rack.controller_stats(),
        "controller counters diverged (seed {seed:#x})"
    );
    for i in 0..config.servers {
        assert_eq!(
            sim.server_stats(i),
            rack.server_stats(i),
            "server {i} counters diverged (seed {seed:#x})"
        );
    }
}

/// Replication must be transport-invariant too: with `replication_factor
/// = 2` every write is rewritten to a chain op and crosses switch → head
/// → tail → switch on both transports, reads steer to the tail, and the
/// comparison stays exact — replies, stores, cache membership, and every
/// counter including the chain-write/commit stats.
#[test]
fn rack_and_sim_agree_with_replication() {
    let seed = seed_from_env(0x5eed_d1fc);
    let mut config = sim_config(seed);
    config.replication_factor = 2;
    let ops = script(seed, &config);

    let mut sim = RackSim::new(config.clone()).expect("valid sim config");
    let rack = build_rack(&config);

    assert_eq!(sim.switch_stats(), rack.switch_stats(), "seed {seed:#x}");
    let sim_replies = sim.run_script(&ops);
    let rack_replies = run_script_on_rack(&rack, &ops, config.value_len);
    assert_eq!(sim_replies.len(), rack_replies.len());
    for (i, (s, r)) in sim_replies.iter().zip(rack_replies.iter()).enumerate() {
        assert_eq!(s, r, "reply {i} diverged (seed {seed:#x}, op {:?})", ops[i]);
    }

    assert_eq!(
        store_contents(&sim, config.num_keys),
        store_contents(&rack, config.num_keys),
        "final store contents diverged (seed {seed:#x})"
    );
    assert_eq!(
        cache_membership(&sim, config.num_keys),
        cache_membership(&rack, config.num_keys),
        "final cache membership diverged (seed {seed:#x})"
    );
    let sim_switch = sim.switch_stats();
    assert!(
        sim_switch.chain_writes > 0 && sim_switch.chain_commits > 0,
        "replicated script never exercised the chain (seed {seed:#x}): {sim_switch:?}"
    );
    assert_eq!(sim_switch, rack.switch_stats(), "seed {seed:#x}");
    assert_eq!(
        sim.controller_stats(),
        rack.controller_stats(),
        "controller counters diverged (seed {seed:#x})"
    );
    for i in 0..config.servers {
        assert_eq!(
            sim.server_stats(i),
            rack.server_stats(i),
            "server {i} counters diverged (seed {seed:#x})"
        );
    }
}

#[test]
fn rack_and_sim_agree_in_write_around_mode() {
    let seed = seed_from_env(0x5eed_d1fe);
    let config = sim_config(seed);
    let ops = script(seed, &config);

    let mut sim = RackSim::with_dataplane_updates(config.clone(), false).expect("valid config");
    let rack = Rack::new(rack_config_for(&config, false)).expect("valid config");
    let loaded = config
        .loaded_keys
        .map_or(config.num_keys, |k| k.min(config.num_keys));
    rack.load_dataset(loaded, config.value_len);
    let mix = QueryMix::new(
        config.num_keys,
        config.theta,
        config.write_ratio,
        config.write_skew,
    );
    let hottest: Vec<Key> = mix
        .popularity()
        .hottest(config.cache_items)
        .iter()
        .map(|&id| Key::from_u64(id))
        .collect();
    rack.populate_cache(hottest);

    let sim_replies = sim.run_script(&ops);
    let rack_replies = run_script_on_rack(&rack, &ops, config.value_len);
    assert_eq!(sim_replies, rack_replies, "seed {seed:#x}");
    assert_eq!(
        store_contents(&sim, config.num_keys),
        store_contents(&rack, config.num_keys),
        "seed {seed:#x}"
    );
    assert_eq!(sim.switch_stats(), rack.switch_stats(), "seed {seed:#x}");
}

/// Strips the serving-path flag from a reply: over real loopback sockets
/// a Get can race the post-write `CacheUpdate` and be served by the
/// server instead of the (momentarily invalid) switch entry. The *value*
/// must still match; where it came from is transport timing.
fn logical(reply: Option<Response>) -> Option<Response> {
    reply.map(|r| match r {
        Response::Value { key, value, .. } => Response::Value {
            key,
            value,
            from_cache: false,
        },
        other => other,
    })
}

/// Over real loopback sockets timing is non-deterministic, so the UDP
/// comparison is aggregate: the same ops must yield the same logical
/// replies (same values, cache-vs-server path normalized away), the same
/// final store contents and the same cache membership as the in-process
/// rack, even though per-packet counters may differ by retransmissions.
#[test]
fn udp_matches_in_process_outcomes() {
    let seed = seed_from_env(0x5eed_0d1f);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = netcache::RackConfig::small(4);
    config.controller.cache_capacity = 16;

    let udp = UdpRack::start(config.clone()).expect("loopback rack");
    let rack = Rack::new(config.clone()).expect("valid config");
    udp.load_dataset(500, 32);
    udp.populate_cache((0..16).map(Key::from_u64));
    rack.load_dataset(500, 32);
    rack.populate_cache((0..16).map(Key::from_u64));

    let mut udp_client = udp.client(0);
    let mut rack_client = rack.client(0);
    for i in 0..200u64 {
        let id = if rng.random::<f64>() < 0.7 {
            rng.random::<u64>() % 16
        } else {
            16 + rng.random::<u64>() % 100
        };
        let key = Key::from_u64(id);
        let r = rng.random::<f64>();
        let (udp_outcome, rack_outcome) = if r < 0.6 {
            (
                udp_client.get_with_retry(key),
                rack_client.get_with_retry(key),
            )
        } else if r < 0.9 {
            let value = Value::filled((i % 251) as u8 + 1, 32);
            (
                udp_client.put_with_retry(key, value.clone()),
                rack_client.put_with_retry(key, value),
            )
        } else {
            (
                udp_client.delete_with_retry(key),
                rack_client.delete_with_retry(key),
            )
        };
        let udp_reply = logical(udp_outcome.response.map(|c| c.into_response()));
        let rack_reply = logical(rack_outcome.response.map(|c| c.into_response()));
        assert_eq!(udp_reply, rack_reply, "op {i} diverged (seed {seed:#x})");
    }

    assert_eq!(
        store_contents(&udp, 500),
        store_contents(&rack, 500),
        "final store contents diverged (seed {seed:#x})"
    );
    assert_eq!(
        cache_membership(&udp, 500),
        cache_membership(&rack, 500),
        "cache membership diverged (seed {seed:#x})"
    );
}

/// The large-value API must be transport-invariant: the same writes and
/// reads — single-pass (≤128 B values), recirculated multi-pass (up to
/// 2 KB in one item) and chunked-fallback (beyond 2 KB) sizes — must
/// return byte-identical payloads on the in-process rack, the
/// discrete-event simulator and the loopback-UDP rack, and agree with a
/// reference model of the logical store. Rack and sim are deterministic
/// and identically assembled, so their comparison is exact (including
/// serving provenance and the recirculation counter); the UDP rack is
/// compared on bytes. Multi-pass entries must actually be served by
/// recirculation once the controller admits the heavily read base keys.
#[test]
fn large_values_agree_across_all_three_transports() {
    use netcache::LargeValueOps;
    use netcache_sim::ScriptOp;
    use std::collections::HashMap;

    // One logical item per size class: empty, one byte, exactly one
    // pass's worth of payload, one over, mid multi-pass, the largest
    // single item (manifest = 2048 B value, 16 passes), one byte into
    // chunked fallback, and a three-chunk payload.
    const SIZES: [usize; 8] = [0, 1, 128, 129, 300, 2044, 2045, 6000];
    fn payload(tag: usize, len: usize) -> Vec<u8> {
        (0..len).map(|j| ((tag * 31 + j * 7) % 251) as u8).collect()
    }
    fn base_key(i: usize) -> Key {
        Key::from_u64(50_000 + i as u64)
    }

    let seed = seed_from_env(0x001a_46e5);
    let config = sim_config(seed);
    let mut sim = RackSim::new(config.clone()).expect("valid sim config");
    let rack = build_rack(&config);
    let udp = UdpRack::start(rack_config_for(&config, true)).expect("loopback rack");
    {
        // Mirror build_rack's assembly for the UDP deployment.
        let loaded = config
            .loaded_keys
            .map_or(config.num_keys, |k| k.min(config.num_keys));
        udp.load_dataset(loaded, config.value_len);
        let mix = QueryMix::new(
            config.num_keys,
            config.theta,
            config.write_ratio,
            config.write_skew,
        );
        let hottest: Vec<Key> = mix
            .popularity()
            .hottest(config.cache_items)
            .iter()
            .map(|&id| Key::from_u64(id))
            .collect();
        udp.populate_cache(hottest);
    }
    let mut rack_client = rack.client(0);
    let mut udp_client = udp.client(0);

    // Phase 1: write one item per size class on every transport.
    let mut model: HashMap<usize, Vec<u8>> = HashMap::new();
    for (i, &len) in SIZES.iter().enumerate() {
        let p = payload(i, len);
        assert!(
            rack_client.put_large(base_key(i), &p).is_some(),
            "rack put {len}"
        );
        assert!(sim.put_large(base_key(i), &p).is_some(), "sim put {len}");
        assert!(
            udp_client.put_large(base_key(i), &p).is_some(),
            "udp put {len}"
        );
        model.insert(i, p);
    }

    // Phase 2: heat the base keys past the heavy-hitter threshold, then
    // run controller cycles so the size-aware admission installs them
    // (multi-pass slots for everything above one pass's worth).
    for _ in 0..70 {
        for i in 0..SIZES.len() {
            assert!(rack_client.get_large(base_key(i)).is_some());
            assert!(sim.get_large(base_key(i)).is_some());
            assert!(udp_client.get_large(base_key(i)).is_some());
        }
    }
    let cycles = [
        ScriptOp::Controller,
        ScriptOp::AdvanceMs(2),
        ScriptOp::Controller,
    ];
    sim.run_script(&cycles);
    run_script_on_rack(&rack, &cycles, config.value_len);
    udp.run_controller(1_000_000);
    udp.run_controller(3_000_000);

    // Phase 3: cached reads — byte equality against the model
    // everywhere, exact equality (bytes + provenance) between rack and
    // sim, and actual recirculated service.
    let recirc_before = rack.switch_stats().recirculations;
    let mut any_fully_cached = false;
    for (i, &len) in SIZES.iter().enumerate() {
        let rack_read = rack_client.get_large(base_key(i)).expect("rack read");
        let sim_read = sim.get_large(base_key(i)).expect("sim read");
        let udp_read = udp_client.get_large(base_key(i)).expect("udp read");
        assert_eq!(&rack_read.0, &model[&i], "rack bytes, size {len}");
        assert_eq!(
            sim_read, rack_read,
            "sim diverged from rack at size {len} (seed {seed:#x})"
        );
        assert_eq!(
            udp_read.0, rack_read.0,
            "udp bytes diverged at size {len} (seed {seed:#x})"
        );
        any_fully_cached |= rack_read.1;
    }
    assert!(
        any_fully_cached,
        "no large item was served entirely from the switch cache (seed {seed:#x})"
    );
    assert!(
        rack.switch_stats().recirculations > recirc_before,
        "cached multi-pass reads must recirculate (seed {seed:#x}): {:?}",
        rack.switch_stats()
    );
    assert_eq!(
        sim.switch_stats(),
        rack.switch_stats(),
        "switch counters diverged (seed {seed:#x})"
    );

    // Phase 4: overwrite every key with a different size class (shrinks
    // and grows, crossing the single-item/chunked boundary both ways),
    // then re-read everywhere.
    for i in 0..SIZES.len() {
        let len = SIZES[(i + 3) % SIZES.len()];
        let p = payload(100 + i, len);
        assert!(rack_client.put_large(base_key(i), &p).is_some());
        assert!(sim.put_large(base_key(i), &p).is_some());
        assert!(udp_client.put_large(base_key(i), &p).is_some());
        model.insert(i, p);
    }
    for i in 0..SIZES.len() {
        let rack_read = rack_client.get_large(base_key(i)).expect("rack reread");
        let sim_read = sim.get_large(base_key(i)).expect("sim reread");
        let udp_read = udp_client.get_large(base_key(i)).expect("udp reread");
        assert_eq!(
            &rack_read.0, &model[&i],
            "rack bytes after overwrite, key {i}"
        );
        assert_eq!(
            sim_read, rack_read,
            "sim diverged from rack after overwrite, key {i} (seed {seed:#x})"
        );
        assert_eq!(
            udp_read.0, rack_read.0,
            "udp bytes diverged after overwrite, key {i} (seed {seed:#x})"
        );
    }
    assert_eq!(
        sim.switch_stats(),
        rack.switch_stats(),
        "final switch counters diverged (seed {seed:#x})"
    );
    udp.stop();
}

/// The runtime layer must be invisible to rack semantics: the same
/// seeded workload driven over the batched (`recvmmsg`/`sendmmsg`,
/// SO_REUSEPORT shards) and the portable (`recv_from`/`send_to`)
/// backends must produce the same logical replies, the same final store
/// contents and the same cache membership. Per-packet counters are free
/// to differ — that is the point of the abstraction — so the comparison
/// is aggregate, exactly like the UDP-vs-in-process case above.
#[test]
fn batched_and_portable_runtimes_agree() {
    use netcache::runtime::RuntimeKind;
    use netcache::udp::PipelineOp;

    let seed = seed_from_env(0xfab_0d1f);
    let mut config = netcache::RackConfig::small(4);
    config.controller.cache_capacity = 16;

    let racks = [
        UdpRack::start_with_runtime(config.clone(), RuntimeKind::Batched).expect("batched rack"),
        UdpRack::start_with_runtime(config.clone(), RuntimeKind::Portable).expect("portable rack"),
    ];
    for rack in &racks {
        rack.load_dataset(400, 32);
        rack.populate_cache((0..16).map(Key::from_u64));
    }

    // Phase 1: sequential ops, reply-for-reply equality (values only;
    // cache-vs-server serving path is transport timing, normalized by
    // `logical`).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clients = [racks[0].client(0), racks[1].client(0)];
    for i in 0..120u64 {
        let id = if rng.random::<f64>() < 0.7 {
            rng.random::<u64>() % 16
        } else {
            16 + rng.random::<u64>() % 80
        };
        let key = Key::from_u64(id);
        let replies: Vec<_> = if rng.random::<f64>() < 0.65 {
            clients.iter_mut().map(|c| c.get_with_retry(key)).collect()
        } else {
            let value = Value::filled((i % 251) as u8 + 1, 32);
            clients
                .iter_mut()
                .map(|c| c.put_with_retry(key, value.clone()))
                .collect()
        };
        let logical_replies: Vec<_> = replies
            .into_iter()
            .map(|out| logical(out.response.map(|c| c.into_response())))
            .collect();
        assert_eq!(
            logical_replies[0], logical_replies[1],
            "op {i} diverged between runtimes (seed {seed:#x})"
        );
    }

    // Phase 2: a pipelined burst — the window is what actually fills the
    // batched runtime's rings. Puts land on distinct keys so the final
    // store state is independent of in-flight completion order.
    let ops: Vec<PipelineOp> = (0..300u64)
        .map(|i| {
            if i % 5 == 4 {
                PipelineOp::Put(
                    Key::from_u64(200 + i),
                    Value::filled((i % 251) as u8 + 1, 32),
                )
            } else if i % 3 == 0 {
                PipelineOp::Get(Key::from_u64(i % 16))
            } else {
                PipelineOp::Get(Key::from_u64(16 + i % 80))
            }
        })
        .collect();
    for (rack, name) in racks.iter().zip(["batched", "portable"]) {
        let report = rack.client(1).run_pipelined(&ops, 32);
        assert_eq!(
            report.completed,
            ops.len() as u64,
            "{name}: pipelined ops lost (seed {seed:#x}, {report:?})"
        );
        assert_eq!(report.abandoned, 0, "{name}: {report:?}");
    }

    assert_eq!(
        store_contents(&racks[0], 400),
        store_contents(&racks[1], 400),
        "final store contents diverged (seed {seed:#x})"
    );
    assert_eq!(
        cache_membership(&racks[0], 400),
        cache_membership(&racks[1], 400),
        "cache membership diverged (seed {seed:#x})"
    );
    let [batched, portable] = racks;
    batched.stop();
    portable.stop();
}
