//! Large values via chunking, end-to-end (§2).

use netcache::{Rack, RackConfig};
use netcache_client::chunked;
use netcache_proto::Key;

fn rack() -> Rack {
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 32;
    config.switch.hot_threshold = 8;
    Rack::new(config).expect("valid config")
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 13 % 251) as u8).collect()
}

#[test]
fn multi_kilobyte_round_trip() {
    let r = rack();
    let mut c = r.client(0);
    for len in [100usize, 124, 125, 1_000, 4_000] {
        let base = Key::from_u64(10_000 + len as u64);
        let p = payload(len);
        c.put_large(base, &p).expect("stored");
        let (back, _) = c.get_large(base).expect("read back");
        assert_eq!(back, p, "len {len}");
    }
}

#[test]
fn hot_chunked_item_gets_fully_cached() {
    let r = rack();
    let mut c = r.client(0);
    let base = Key::from_u64(1);
    let p = payload(500); // 4 chunks
    c.put_large(base, &p).expect("stored");
    // Reading heats every chunk key; the HH detector sees each chunk as
    // its own item (no new switch mechanism needed).
    for _ in 0..40 {
        c.get_large(base).expect("read");
    }
    r.run_controller();
    let (back, all_cached) = c.get_large(base).expect("read");
    assert_eq!(back, p);
    assert!(all_cached, "all 4 chunks should be switch-served");
}

#[test]
fn overwrite_with_different_size() {
    let r = rack();
    let mut c = r.client(0);
    let base = Key::from_u64(2);
    c.put_large(base, &payload(2_000)).expect("stored");
    // Shrink.
    let small = payload(50);
    c.put_large(base, &small).expect("stored");
    let (back, _) = c.get_large(base).expect("read");
    assert_eq!(back, small);
    // Grow again.
    let big = payload(3_000);
    c.put_large(base, &big).expect("stored");
    let (back, _) = c.get_large(base).expect("read");
    assert_eq!(back, big);
}

#[test]
fn plain_small_values_and_chunked_share_namespace() {
    // A ≤124-byte payload stored via put_large is a single ordinary item
    // readable as such (with the 4-byte manifest header).
    let r = rack();
    let mut c = r.client(0);
    let base = Key::from_u64(3);
    let p = payload(60);
    c.put_large(base, &p).expect("stored");
    let raw = c.get(base).expect("reply");
    let (total, first) = chunked::decode_manifest(raw.value().expect("value")).expect("manifest");
    assert_eq!(total, 60);
    assert_eq!(first, &p[..]);
}

#[test]
fn missing_chunk_is_detected() {
    let r = rack();
    let mut c = r.client(0);
    let base = Key::from_u64(4);
    c.put_large(base, &payload(1_000)).expect("stored");
    // Delete one continuation chunk behind the reader's back.
    c.delete(chunked::chunk_key(base, 2)).expect("ack");
    assert!(
        c.get_large(base).is_none(),
        "corruption must not go unnoticed"
    );
}
