//! Variable-length values end-to-end (§2).
//!
//! A single item now carries up to `MAX_VALUE_LEN` (2 KB) bytes and is
//! served from the switch cache by recirculating the packet through the
//! value stages; payloads beyond that fall back to the §2 chunking
//! scheme. These tests pin the boundaries between the classes, the
//! recirculated cached path, overwrite interleavings, and a differential
//! against server ground truth under seeded network faults.

use netcache::{seed_from_env, FaultConfig, LargeValueOps, Rack, RackConfig, RackHandle};
use netcache_client::chunked::{self, FIRST_CHUNK_PAYLOAD, MAX_LARGE_LEN};
use netcache_proto::{Key, MAX_VALUE_LEN};
use proptest::prelude::*;

fn rack() -> Rack {
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 32;
    config.switch.hot_threshold = 8;
    Rack::new(config).expect("valid config")
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 13 % 251) as u8).collect()
}

#[test]
fn boundary_sizes_round_trip() {
    let r = rack();
    let mut c = r.client(0);
    // Every size-class boundary: empty, one pipeline pass's worth of
    // VALUE, the largest single (recirculated) item, the first chunked
    // payload, the two-/three-chunk boundary, and the absolute cap.
    let sizes = [
        0usize,
        1,
        128,
        129,
        FIRST_CHUNK_PAYLOAD - 1,
        FIRST_CHUNK_PAYLOAD,
        FIRST_CHUNK_PAYLOAD + 1,
        FIRST_CHUNK_PAYLOAD + MAX_VALUE_LEN,
        FIRST_CHUNK_PAYLOAD + MAX_VALUE_LEN + 1,
        MAX_LARGE_LEN,
    ];
    for len in sizes {
        let base = Key::from_u64(10_000 + len as u64);
        let p = payload(len);
        c.put_large(base, &p).expect("stored");
        let (back, _) = c.get_large(base).expect("read back");
        assert_eq!(back, p, "len {len}");
    }
    assert!(
        c.put_large(Key::from_u64(9), &payload(MAX_LARGE_LEN + 1))
            .is_none(),
        "over-cap payload must be rejected, not truncated"
    );
}

#[test]
fn hot_multi_pass_item_served_by_recirculation() {
    let r = rack();
    let mut c = r.client(0);
    let base = Key::from_u64(1);
    // 2044 B payload -> one 2048 B item: 128 units, 16 pipeline passes.
    let p = payload(FIRST_CHUNK_PAYLOAD);
    c.put_large(base, &p).expect("stored");
    for _ in 0..40 {
        c.get_large(base).expect("read");
    }
    r.run_controller();
    assert!(r.is_cached(&base), "hot single-item key should be admitted");
    let recirc_before = r.switch_stats().recirculations;
    let (back, all_cached) = c.get_large(base).expect("read");
    assert_eq!(back, p);
    assert!(
        all_cached,
        "the one constituent item should be switch-served"
    );
    assert_eq!(
        r.switch_stats().recirculations,
        recirc_before + 15,
        "a 16-pass cached read recirculates 15 times"
    );
}

#[test]
fn hot_chunked_item_gets_fully_cached() {
    let r = rack();
    let mut c = r.client(0);
    let base = Key::from_u64(1);
    let p = payload(FIRST_CHUNK_PAYLOAD + 2 * MAX_VALUE_LEN); // 3 chunks
    c.put_large(base, &p).expect("stored");
    // Reading heats every chunk key; the HH detector sees each chunk as
    // its own item (no new switch mechanism needed).
    for _ in 0..40 {
        c.get_large(base).expect("read");
    }
    r.run_controller();
    let (back, all_cached) = c.get_large(base).expect("read");
    assert_eq!(back, p);
    assert!(all_cached, "all 3 chunks should be switch-served");
}

#[test]
fn overwrite_with_different_size() {
    let r = rack();
    let mut c = r.client(0);
    let base = Key::from_u64(2);
    c.put_large(base, &payload(5_000)).expect("stored");
    // Shrink below one item.
    let small = payload(50);
    c.put_large(base, &small).expect("stored");
    let (back, _) = c.get_large(base).expect("read");
    assert_eq!(back, small);
    // Grow back across the chunking boundary.
    let big = payload(7_000);
    c.put_large(base, &big).expect("stored");
    let (back, _) = c.get_large(base).expect("read");
    assert_eq!(back, big);
}

#[test]
fn plain_small_values_and_chunked_share_namespace() {
    // A payload that fits one VALUE field is a single ordinary item
    // readable as such (with the 4-byte manifest header).
    let r = rack();
    let mut c = r.client(0);
    let base = Key::from_u64(3);
    let p = payload(300);
    c.put_large(base, &p).expect("stored");
    let raw = c.get(base).expect("reply");
    let (total, first) = chunked::decode_manifest(raw.value().expect("value")).expect("manifest");
    assert_eq!(total, 300);
    assert_eq!(first, &p[..]);
}

#[test]
fn missing_chunk_is_detected() {
    let r = rack();
    let mut c = r.client(0);
    let base = Key::from_u64(4);
    c.put_large(base, &payload(FIRST_CHUNK_PAYLOAD + 2 * MAX_VALUE_LEN))
        .expect("stored");
    // Delete one continuation chunk behind the reader's back.
    c.delete(chunked::chunk_key(base, 2)).expect("ack");
    assert!(
        c.get_large(base).is_none(),
        "corruption must not go unnoticed"
    );
}

/// Under seeded loss/duplication/reordering, reads of fault-free-written
/// items must be all-or-nothing: every successful `get_large` —
/// recirculation-cached or server-served — returns the ground-truth
/// bytes exactly, and the stores themselves hold precisely the chunk
/// layout `chunked::split` prescribes.
#[test]
fn faulty_network_reads_match_server_ground_truth() {
    let seed = seed_from_env(0xfa_1a46e);
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 32;
    config.switch.hot_threshold = 8;
    config.faults = FaultConfig {
        loss: 0.05,
        duplicate: 0.02,
        reorder: 0.02,
        max_delay_ns: 20_000,
        seed,
    };
    let r = Rack::new(config).expect("valid config");
    let mut c = r.client(0);

    // One item per size class: multi-pass single item and chunked.
    let sizes = [300usize, FIRST_CHUNK_PAYLOAD, 6_000];
    for (i, &len) in sizes.iter().enumerate() {
        let base = Key::from_u64(100 + i as u64);
        let p = payload(len);
        // Composite writes abort on any lost constituent; rewriting the
        // same chunks is idempotent, so retry until one pass fully acks.
        let stored = (0..100).any(|_| c.put_large(base, &p).is_some());
        assert!(stored, "write never fully acked (seed {seed:#x})");
    }

    // Heat the keys and let the controller admit them mid-faults.
    for round in 0..60 {
        for (i, &len) in sizes.iter().enumerate() {
            let base = Key::from_u64(100 + i as u64);
            if let Some((back, _)) = c.get_large(base) {
                assert_eq!(back, payload(len), "partial/stale read (seed {seed:#x})");
            }
        }
        if round % 20 == 19 {
            r.run_controller();
        }
    }
    assert!(
        r.switch_stats().recirculations > 0,
        "hot multi-pass items never served by recirculation (seed {seed:#x})"
    );

    // Differential against the stores: every chunk of every item sits in
    // its owning server exactly as `split` prescribes.
    for (i, &len) in sizes.iter().enumerate() {
        let base = Key::from_u64(100 + i as u64);
        for (index, value) in chunked::split(&payload(len)).expect("fits") {
            let key = chunked::chunk_key(base, index);
            let home = r.addressing().home_of(&key);
            let item = r
                .server(home.server)
                .fetch(&key)
                .unwrap_or_else(|| panic!("chunk {index} of item {i} missing from store"));
            assert_eq!(
                item.value, value,
                "store diverged at chunk {index} of item {i} (seed {seed:#x})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Round trip at arbitrary sizes, biased toward the class boundaries.
    #[test]
    fn round_trip_any_size(
        len in prop_oneof![
            Just(0usize),
            Just(FIRST_CHUNK_PAYLOAD - 1),
            Just(FIRST_CHUNK_PAYLOAD),
            Just(FIRST_CHUNK_PAYLOAD + 1),
            Just(MAX_LARGE_LEN),
            0usize..10_000,
        ],
    ) {
        let r = rack();
        let mut c = r.client(0);
        let base = Key::from_u64(77);
        let p = payload(len);
        prop_assert!(c.put_large(base, &p).is_some());
        let (back, _) = c.get_large(base).expect("read back");
        prop_assert_eq!(back, p);
    }

    /// Manifest-before-data overwrite ordering: a reader interleaved with
    /// an overwrite's constituent writes must always observe a payload of
    /// either the old or the new total length (a stale manifest may pair
    /// with already-rewritten continuation bytes, which the length checks
    /// in `reassemble` can reject — but never a dangling manifest, and
    /// single-item overwrites are fully atomic). After the final write the
    /// new bytes are visible exactly.
    #[test]
    fn overwrite_interleavings_never_dangle(
        old_len in prop_oneof![Just(0usize), Just(FIRST_CHUNK_PAYLOAD), 0usize..7_000],
        new_len in prop_oneof![Just(0usize), Just(FIRST_CHUNK_PAYLOAD), 0usize..7_000],
    ) {
        let r = rack();
        let mut c = r.client(0);
        let base = Key::from_u64(5);
        let old = payload(old_len);
        let mut new = payload(new_len);
        for b in &mut new {
            *b = b.wrapping_add(1); // distinguishable contents
        }
        c.put_large(base, &old).expect("stored");

        let both_single = old_len <= FIRST_CHUNK_PAYLOAD && new_len <= FIRST_CHUNK_PAYLOAD;
        // Replay put_large one constituent write at a time, reading
        // between writes like a concurrent reader would.
        let chunks = chunked::split(&new).expect("fits");
        for (index, value) in chunks {
            let key = chunked::chunk_key(base, index);
            c.put(key, value).expect("fault-free write");
            match c.get_large(base) {
                Some((back, _)) => {
                    prop_assert!(
                        back.len() == old_len || back.len() == new_len,
                        "reader saw length {} (old {}, new {})",
                        back.len(), old_len, new_len
                    );
                    if both_single {
                        prop_assert!(
                            back == old || back == new,
                            "single-item overwrite must be atomic"
                        );
                    }
                }
                None => prop_assert!(
                    !both_single,
                    "single-item reads can never fail mid-overwrite"
                ),
            }
        }
        let (back, _) = c.get_large(base).expect("read after overwrite");
        prop_assert_eq!(back, new);
    }
}
