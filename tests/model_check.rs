//! Model-based differential suite: the full rack (switch cache + servers +
//! controller + faulty network) replayed against a naive single-map
//! reference model over seeded random operation sequences.
//!
//! The reference model is deliberately trivial — one map from key to the
//! set of values the key may legally hold. On a clean network every
//! operation acks, the set is always a singleton, and the check degenerates
//! to exact equality with a `HashMap`. Under faults an abandoned write may
//! or may not have been applied (and a delayed duplicate may apply it
//! *later*), so the model widens the set until the next acked write or
//! delete collapses it again. Every acked read must land inside the set.
//!
//! Cache-plane mutations (controller inserts and evictions) are injected
//! mid-stream: they must never change what any read observes, only where
//! it is served from.
//!
//! Values are size-mixed: each key has a fixed length drawn from classes
//! spanning one pipeline pass up to the full 16-pass recirculation cap
//! (`MAX_VALUE_LEN`), so cache churn moves multi-pass entries through the
//! allocator's consecutive-bin spans while queries fly. Certain reads are
//! checked byte for byte against the reference body, not just by counter.
//!
//! Seeds derive from one base, adjustable via `NETCACHE_TEST_SEED`.

use std::collections::HashMap;

use netcache::{seed_from_env, FaultConfig, Rack, RackConfig, RackHandle, RetryPolicy};
use netcache_client::Response;
use netcache_proto::{Key, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Distinct keys in the workload; the cache (capacity 8) covers a third.
const KEYS: u64 = 24;
/// Mixed operations per scenario, after the initial seeding puts.
const OPS: usize = 300;

/// Values carry a big-endian write counter; counters are unique across the
/// whole run, so a read unambiguously identifies which write it observed.
fn val(counter: u64) -> Value {
    Value::new(counter.to_be_bytes().to_vec()).expect("8 bytes fits")
}

/// Each key's value length is a fixed property of the key (as in the
/// bench harness's `SizeMix`), drawn from classes covering 1, 2, 6 and 16
/// pipeline passes. Fixed-per-key lengths mean a write never changes an
/// entry's pass count, so data-plane cache updates exercise multi-pass
/// value writes without implying in-place resizing.
fn len_for(k: u64) -> usize {
    match splitmix64(k ^ 0x512e_0000) % 8 {
        0 => netcache_proto::MAX_VALUE_LEN, // 2048 B = 16 passes
        1 => 720,                           // 45 units = 6 passes
        2 | 3 => 200,                       // 13 units = 2 passes
        _ => 8,                             // single slot, single pass
    }
}

/// The full reference body for (key, counter): counter big-endian in the
/// first 8 bytes (so [`counter_of`] still works), deterministic fill
/// after, sized by [`len_for`]. Certain reads compare against this byte
/// for byte.
fn val_for(k: u64, counter: u64) -> Value {
    let len = len_for(k);
    let mut bytes = vec![0u8; len.max(8)];
    bytes[..8].copy_from_slice(&counter.to_be_bytes());
    let fill = counter.to_le_bytes();
    for (i, slot) in bytes.iter_mut().enumerate().skip(8) {
        *slot = (i as u8) ^ fill[i % 8];
    }
    Value::new(bytes).expect("class lengths fit MAX_VALUE_LEN")
}

fn counter_of(v: &Value) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&v.as_bytes()[..8]);
    u64::from_be_bytes(b)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Scenario seed for case `i` of test `level`; disjoint from the chaos
/// suite's seeds (different base constant).
fn scenario_seed(level: u64, i: u64) -> u64 {
    splitmix64(seed_from_env(0x30de_1c4e) ^ (level << 32) ^ i)
}

/// What one key may legally hold: each element is either `Some(counter)`
/// or `None` (absent). A singleton means the model is certain.
#[derive(Clone, Debug, PartialEq)]
struct Admissible(Vec<Option<u64>>);

impl Admissible {
    fn certain(v: Option<u64>) -> Self {
        Admissible(vec![v])
    }

    /// An acked write resolves all uncertainty.
    fn commit(&mut self, v: Option<u64>) {
        self.0 = vec![v];
    }

    /// An abandoned write may or may not have been applied — and a delayed
    /// duplicate may still apply it later — so *both* outcomes stay
    /// admissible until the next acked write.
    fn admit(&mut self, v: Option<u64>) {
        if !self.0.contains(&v) {
            self.0.push(v);
        }
    }

    fn allows(&self, v: Option<u64>) -> bool {
        self.0.contains(&v)
    }

    fn is_certain(&self) -> bool {
        self.0.len() == 1
    }
}

/// The naive reference model: one map, no cache, no network.
type Model = HashMap<u64, Admissible>;

/// One observed operation, for the determinism check. `Abandoned` means
/// the client exhausted its retry budget.
#[derive(Clone, Debug, PartialEq)]
enum Observed {
    Got(Option<u64>),
    PutAck(u64),
    DeleteAck(u64),
    Abandoned,
    CachePopulated(bool),
    CacheEvicted(bool),
}

struct ScenarioResult {
    trace: Vec<Observed>,
    abandoned: u64,
    /// Reads answered while the model was certain (exact-equality checks).
    certain_reads: u64,
    cache_inserts: u64,
    cache_evictions: u64,
    /// Successful controller insertions of keys wider than one pipeline
    /// pass (served by recirculation once cached).
    wide_cache_inserts: u64,
    /// Extra pipeline passes the switch took serving recirculated values.
    recirculations: u64,
}

/// Replays one seeded operation sequence against the rack and the model in
/// lockstep, asserting every acked read lands inside the model's
/// admissible set.
fn run_scenario(seed: u64, faults: FaultConfig) -> ScenarioResult {
    run_scenario_replicated(seed, faults, 1)
}

/// The same lockstep replay against a rack whose partitions are chain-
/// replicated across `factor` servers. Replication must be invisible to
/// the model: an acked chain write committed at the tail, so it resolves
/// uncertainty exactly like a single-replica ack, and an abandoned chain
/// write may have been applied at a prefix of the chain — precisely the
/// "may or may not have been applied" case the admissible set already
/// widens for.
fn run_scenario_replicated(seed: u64, faults: FaultConfig, factor: u32) -> ScenarioResult {
    let mut config = RackConfig::small(4);
    config.replication_factor = factor;
    config.controller.cache_capacity = 8;
    config.faults = faults;
    let rack = Rack::new(config).expect("valid config");
    let policy = RetryPolicy::default();
    let mut client = rack.client(0).with_policy(policy.clone());
    let mut rng = StdRng::seed_from_u64(splitmix64(seed));

    let mut model: Model = (0..KEYS).map(|k| (k, Admissible::certain(None))).collect();
    let mut next_counter = 0u64;
    let mut result = ScenarioResult {
        trace: Vec::new(),
        abandoned: 0,
        certain_reads: 0,
        cache_inserts: 0,
        cache_evictions: 0,
        wide_cache_inserts: 0,
        recirculations: 0,
    };

    // Seed every key (under faults too), then cache the first third so the
    // stream mixes switch-served and server-served reads from the start.
    for k in 0..KEYS {
        next_counter += 1;
        let out = client.put_with_retry(Key::from_u64(k), val_for(k, next_counter));
        assert!(out.retries <= policy.max_retries, "retry bound exceeded");
        let entry = model.get_mut(&k).expect("pre-seeded key");
        match out.response {
            Some(_) => {
                entry.commit(Some(next_counter));
                result.trace.push(Observed::PutAck(next_counter));
            }
            None => {
                entry.admit(Some(next_counter));
                result.abandoned += 1;
                result.trace.push(Observed::Abandoned);
            }
        }
    }
    rack.populate_cache((0..KEYS / 3).map(Key::from_u64));

    for _ in 0..OPS {
        let k = rng.random_range(0..KEYS);
        let key = Key::from_u64(k);
        let roll: f64 = rng.random();
        if roll < 0.55 {
            // Read, checked against the model.
            let out = client.get_with_retry(key);
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            let Some(resp) = out.response else {
                result.abandoned += 1;
                result.trace.push(Observed::Abandoned);
                continue;
            };
            let entry = &model[&k];
            let observed = match resp.response() {
                Response::Value { value, .. } => Some(counter_of(value)),
                Response::NotFound { .. } => None,
                other => panic!("unexpected get response {other:?}"),
            };
            assert!(
                entry.allows(observed),
                "divergence on key {k}: rack returned {observed:?}, model \
                 allows {entry:?} (seed {seed:#x})"
            );
            if entry.is_certain() {
                result.certain_reads += 1;
                // Certain reads are checked byte for byte: a recirculated
                // multi-pass read must reassemble the exact body, not just
                // the counter in the first slot.
                if let (Some(counter), Response::Value { value, .. }) = (observed, resp.response())
                {
                    assert_eq!(
                        value.as_bytes(),
                        val_for(k, counter).as_bytes(),
                        "body mismatch on key {k} ({} B, seed {seed:#x})",
                        len_for(k)
                    );
                }
            }
            result.trace.push(Observed::Got(observed));
        } else if roll < 0.80 {
            // Write, applied to both rack and model.
            next_counter += 1;
            let out = client.put_with_retry(key, val_for(k, next_counter));
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            let entry = model.get_mut(&k).expect("pre-seeded key");
            match out.response {
                Some(resp) => {
                    assert!(matches!(resp.response(), Response::PutAck { .. }));
                    entry.commit(Some(next_counter));
                    result.trace.push(Observed::PutAck(next_counter));
                }
                None => {
                    entry.admit(Some(next_counter));
                    result.abandoned += 1;
                    result.trace.push(Observed::Abandoned);
                }
            }
        } else if roll < 0.90 {
            // Delete, applied to both rack and model.
            let out = client.delete_with_retry(key);
            assert!(out.retries <= policy.max_retries, "retry bound exceeded");
            let entry = model.get_mut(&k).expect("pre-seeded key");
            match out.response {
                Some(resp) => {
                    assert!(matches!(resp.response(), Response::DeleteAck { .. }));
                    entry.commit(None);
                    result.trace.push(Observed::DeleteAck(next_counter));
                }
                None => {
                    entry.admit(None);
                    result.abandoned += 1;
                    result.trace.push(Observed::Abandoned);
                }
            }
        } else if roll < 0.95 {
            // Cache-plane mutation: controller insertion. Must not change
            // any observable value — the model is untouched.
            let inserted = rack.populate_cache([key]) == 1;
            result.cache_inserts += u64::from(inserted);
            if inserted && len_for(k) > netcache_proto::PASS_VALUE_LEN {
                result.wide_cache_inserts += 1;
            }
            result.trace.push(Observed::CachePopulated(inserted));
        } else {
            // Cache-plane mutation: controller eviction (same invariant).
            let evicted = rack.with_switch(|sw| rack.with_controller(|c| c.evict_key(sw, &key)));
            result.cache_evictions += u64::from(evicted);
            result.trace.push(Observed::CacheEvicted(evicted));
            // Flush the queued membership unmark through the backend, as
            // the production control loop would.
            rack.run_controller();
        }
    }
    result.recirculations = rack.with_switch(|sw| sw.stats().recirculations);
    result
}

fn clean() -> FaultConfig {
    FaultConfig::default()
}

fn faulty(loss: f64, seed: u64) -> FaultConfig {
    FaultConfig {
        loss,
        duplicate: 0.05,
        reorder: 0.05,
        max_delay_ns: 300_000,
        seed,
    }
}

/// Clean network: the model never widens, so every read is an exact
/// equality check against the naive map, across cache churn included.
#[test]
fn model_check_clean_network() {
    for i in 0..4 {
        let seed = scenario_seed(1, i);
        let out = run_scenario(seed, clean());
        assert_eq!(
            out.abandoned, 0,
            "clean network abandoned ops (seed {seed:#x})"
        );
        let reads = out
            .trace
            .iter()
            .filter(|o| matches!(o, Observed::Got(_)))
            .count() as u64;
        assert_eq!(
            out.certain_reads, reads,
            "clean network left the model uncertain (seed {seed:#x})"
        );
        assert!(
            out.cache_inserts > 0 && out.cache_evictions > 0,
            "scenario exercised no cache churn (seed {seed:#x}): {} inserts, {} evictions",
            out.cache_inserts,
            out.cache_evictions
        );
    }
}

/// Light faults: most writes still ack, so most reads remain exact checks;
/// the rest are membership checks in a widened set.
#[test]
fn model_check_light_faults() {
    for i in 0..3 {
        let seed = scenario_seed(2, i);
        let out = run_scenario(seed, faulty(0.02, seed));
        assert!(
            out.certain_reads > 0,
            "no exact-equality reads at 2% loss (seed {seed:#x})"
        );
    }
}

/// Heavy faults: the uncertainty machinery earns its keep — scenarios must
/// still never diverge from the admissible set.
#[test]
fn model_check_heavy_faults() {
    for i in 0..3 {
        let seed = scenario_seed(3, i);
        run_scenario(seed, faulty(0.15, seed));
    }
}

/// The whole scenario — faults, workload, cache churn, observations — is a
/// pure function of the seed.
#[test]
fn model_check_is_deterministic_per_seed() {
    let seed = scenario_seed(4, 0);
    let a = run_scenario(seed, faulty(0.10, seed));
    let b = run_scenario(seed, faulty(0.10, seed));
    assert_eq!(a.trace, b.trace, "same seed must replay the same trace");
}

/// Size-aware admissibility: the mixed-size workload must drive real
/// recirculation. The pre-cached first third includes multi-pass keys
/// for every seed (`len_for` is seed-independent), wide entries are
/// admitted mid-stream by cache churn, and certain reads of recirculated
/// values are compared byte for byte inside `run_scenario` — so the
/// allocator's consecutive-bin spans, the switch's per-pass epochs and
/// the §4.3 coherence dance are all exercised at 2, 6 and 16 passes.
#[test]
fn model_check_mixed_sizes_recirculate() {
    let mut wide_inserts = 0;
    for i in 0..4 {
        let seed = scenario_seed(7, i);
        let out = run_scenario(seed, clean());
        assert_eq!(
            out.abandoned, 0,
            "clean network abandoned ops (seed {seed:#x})"
        );
        assert!(
            out.recirculations > 0,
            "mixed-size workload never recirculated (seed {seed:#x})"
        );
        wide_inserts += out.wide_cache_inserts;
    }
    assert!(
        wide_inserts > 0,
        "cache churn never admitted a multi-pass entry"
    );
}

/// Chain-replicated rack, clean network: every write travels switch →
/// head → tail → switch, every op acks, and the model stays an exact
/// equality check — replication is invisible to clients.
#[test]
fn model_check_replicated_clean_network() {
    for i in 0..3 {
        let seed = scenario_seed(5, i);
        let out = run_scenario_replicated(seed, clean(), 2);
        assert_eq!(
            out.abandoned, 0,
            "clean replicated network abandoned ops (seed {seed:#x})"
        );
        let reads = out
            .trace
            .iter()
            .filter(|o| matches!(o, Observed::Got(_)))
            .count() as u64;
        assert_eq!(
            out.certain_reads, reads,
            "clean replicated network left the model uncertain (seed {seed:#x})"
        );
    }
}

/// Chain-replicated rack under heavy loss: chain writes abandoned at any
/// hop (head never reached, or committed-at-head-but-not-tail) must stay
/// inside the admissible set, never outside it.
#[test]
fn model_check_replicated_heavy_faults() {
    for i in 0..3 {
        let seed = scenario_seed(6, i);
        run_scenario_replicated(seed, faulty(0.15, seed), 2);
    }
}

/// The committed-at-head-but-not-tail case, isolated and deterministic: a
/// chain write whose tail dies mid-chain is abandoned by the client, so
/// both the old and the new value are admissible — but the new value must
/// NOT be served from the switch cache, whose entry is only revalidated by
/// a tail commit (§4.3 extended to chains). Only after the controller
/// promotes the head may the abandoned write surface, served by the new
/// tail, and only a fresh controller insertion may cache it.
#[test]
fn model_check_chain_write_abandoned_mid_chain() {
    let mut config = RackConfig::small(4);
    config.replication_factor = 2;
    config.controller.cache_capacity = 8;
    let rack = Rack::new(config).expect("valid config");
    let policy = RetryPolicy {
        max_retries: 2,
        ..RetryPolicy::default()
    };
    let mut client = rack.client(0).with_policy(policy);
    let key = Key::from_u64(0);
    let mut admissible = Admissible::certain(None);

    // Counter 1 commits through the whole chain and gets cached.
    client
        .put_with_retry(key, val(1))
        .response
        .expect("clean chain put acks");
    admissible.commit(Some(1));
    assert_eq!(rack.populate_cache([key]), 1);
    let resp = client.get_with_retry(key).response.expect("cached read");
    assert!(resp.served_by_cache(), "{resp:?}");

    // Kill the tail. Counter 2 is applied by the head, forwarded into the
    // void, and abandoned by the client: both outcomes become admissible.
    let home = rack.addressing().home_of(&key);
    let tail = (home.server + 1) % 4;
    rack.kill_server(tail);
    let out = client.put_with_retry(key, val(2));
    assert!(out.response.is_none(), "the dead tail cannot ack");
    admissible.admit(Some(2));

    // The write invalidated the cache entry on its way in and no tail
    // commit followed, so the un-acked value is never served from the
    // cache — reads chase the dead tail and time out instead.
    assert!(
        client.get_with_retry(key).response.is_none(),
        "reads go to the tail, and the tail is dead until repair"
    );

    // Failover: the head is promoted to a chain of one, which exposes the
    // abandoned write — an admissible outcome, served by the new tail, not
    // from the cache (repair evicted the entry when the tail changed).
    rack.run_controller();
    let resp = client
        .get_with_retry(key)
        .response
        .expect("served after failover");
    let observed = match resp.response() {
        Response::Value { value, .. } => Some(counter_of(value)),
        Response::NotFound { .. } => None,
        other => panic!("unexpected get response {other:?}"),
    };
    assert!(
        admissible.allows(observed),
        "failover exposed {observed:?}, admissible {admissible:?}"
    );
    assert_eq!(
        observed,
        Some(2),
        "the head applied the write before the kill"
    );
    assert!(
        !resp.served_by_cache(),
        "tail change must evict the cached entry: {resp:?}"
    );

    // Only a fresh controller insertion — reading from the new tail — may
    // cache the exposed value.
    assert_eq!(rack.populate_cache([key]), 1);
    let resp = client.get_with_retry(key).response.expect("cached again");
    assert!(resp.served_by_cache(), "{resp:?}");
    assert_eq!(resp.value().map(counter_of), Some(2));

    // The recovered node is wiped, re-synced from the survivor (sole
    // member: head and tail at once, so its exposed state *is* the commit
    // point), and rejoins as tail holding the once-abandoned write.
    rack.restart_server(tail);
    rack.run_controller();
    let item = rack.server(tail).fetch(&key).expect("resynced replica");
    assert_eq!(counter_of(&item.value), 2);
}
