//! Multi-pipe integration: the paper places value tables per egress pipe
//! ("Each egress pipe only stores the cached values for servers that
//! connect to it", §4.4.4) and replicates the lookup table per ingress
//! pipe. These tests run a rack on a 2-pipe and a 4-pipe switch and check
//! that caching, coherence and the controller work across pipes.

use netcache::{Rack, RackConfig, RackHandle};
use netcache_proto::{Key, Value};

fn multi_pipe_rack(pipes: usize, servers: u32) -> Rack {
    let mut config = RackConfig::small(servers);
    config.switch.pipes = pipes;
    config.switch.ports = (servers + 8) as usize;
    config.controller.cache_capacity = 32;
    let rack = Rack::new(config).expect("valid config");
    rack.load_dataset(1_000, 64);
    rack
}

/// Finds keys homed in each pipe so tests can target them deliberately.
fn keys_per_pipe(rack: &Rack, pipes: usize, per_pipe: usize) -> Vec<Vec<Key>> {
    let mut buckets: Vec<Vec<Key>> = vec![Vec::new(); pipes];
    for id in 0..1_000u64 {
        let key = Key::from_u64(id);
        let home = rack.addressing().home_of(&key);
        if buckets[home.pipe].len() < per_pipe {
            buckets[home.pipe].push(key);
        }
        if buckets.iter().all(|b| b.len() >= per_pipe) {
            break;
        }
    }
    buckets
}

#[test]
fn values_cached_and_served_in_both_pipes() {
    let rack = multi_pipe_rack(2, 12);
    let buckets = keys_per_pipe(&rack, 2, 4);
    assert!(
        buckets.iter().all(|b| !b.is_empty()),
        "dataset must span both pipes"
    );
    for bucket in &buckets {
        rack.populate_cache(bucket.iter().copied());
    }
    let mut client = rack.client(0);
    for (pipe, bucket) in buckets.iter().enumerate() {
        for key in bucket {
            let resp = client.get(*key).expect("reply");
            assert!(resp.served_by_cache(), "pipe {pipe} key {key} not cached");
            assert_eq!(
                resp.value().expect("value"),
                &Value::for_item(key.low_u64(), 64)
            );
        }
    }
}

#[test]
fn coherence_works_across_pipes() {
    let rack = multi_pipe_rack(2, 12);
    let buckets = keys_per_pipe(&rack, 2, 2);
    for bucket in &buckets {
        rack.populate_cache(bucket.iter().copied());
    }
    let mut client = rack.client(0);
    for bucket in &buckets {
        for key in bucket {
            client.put(*key, Value::filled(0x5a, 64)).expect("ack");
            let resp = client.get(*key).expect("reply");
            assert!(resp.served_by_cache(), "update must land in the right pipe");
            assert_eq!(resp.value().expect("value"), &Value::filled(0x5a, 64));
        }
    }
}

#[test]
fn controller_learns_hot_keys_in_every_pipe() {
    let mut config = RackConfig::small(12);
    config.switch.pipes = 2;
    config.switch.ports = 20;
    config.controller.cache_capacity = 16;
    config.switch.hot_threshold = 8;
    let rack = Rack::new(config).expect("valid config");
    rack.load_dataset(1_000, 64);
    let buckets = keys_per_pipe(&rack, 2, 1);
    let mut client = rack.client(0);
    for bucket in &buckets {
        for key in bucket {
            for _ in 0..40 {
                client.get(*key).expect("reply");
            }
        }
    }
    rack.run_controller();
    for (pipe, bucket) in buckets.iter().enumerate() {
        for key in bucket {
            assert!(
                client.get(*key).expect("reply").served_by_cache(),
                "pipe {pipe} hot key not inserted"
            );
        }
    }
}

#[test]
fn four_pipes_full_stack() {
    let rack = multi_pipe_rack(4, 28);
    let buckets = keys_per_pipe(&rack, 4, 2);
    assert!(buckets.iter().all(|b| !b.is_empty()), "keys in all 4 pipes");
    for bucket in &buckets {
        rack.populate_cache(bucket.iter().copied());
    }
    let mut client = rack.client(0);
    let mut hits = 0;
    for bucket in &buckets {
        for key in bucket {
            if client.get(*key).expect("reply").served_by_cache() {
                hits += 1;
            }
        }
    }
    assert_eq!(hits, 8, "all cached keys served from their pipes");
}
