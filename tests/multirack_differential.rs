//! Differential test for the multi-rack fabric: a 1-rack [`MultiRack`]
//! with the spine layer disabled must be *exactly* a single-rack
//! NetCache deployment.
//!
//! With one leaf rack there is no inter-rack layer to exercise — the
//! rack-level partitioner maps every key to rack 0 and the boundary NAT
//! rewrites the destination to the same home-server IP a direct rack
//! client computes — so the same seeded script must produce identical
//! replies, identical final store contents, identical cache membership
//! and identical switch/server/controller counters as the discrete-event
//! [`RackSim`] (which is itself pinned against the in-process [`Rack`]
//! and the UDP deployment by `fabric_differential`). This anchors the
//! whole scale-out layer: whatever the spine adds, the leaf racks
//! underneath are the *same* rack.
//!
//! Seeded via `NETCACHE_TEST_SEED` (see `netcache::seed_from_env`).

use netcache::{seed_from_env, RackHandle};
use netcache_client::Response;
use netcache_proto::{Key, Value};
use netcache_sim::{MultiRack, MultiRackConfig, RackSim, ScriptOp, SimConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const NUM_KEYS: u64 = 2_000;
const VALUE_LEN: usize = 64;
const CACHE_ITEMS: usize = 64;
const PARTITION_SEED: u64 = 0x7061_7274;

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        servers: 8,
        num_keys: NUM_KEYS,
        value_len: VALUE_LEN,
        cache_items: CACHE_ITEMS,
        partition_seed: PARTITION_SEED,
        seed,
        ..SimConfig::default()
    }
}

/// The 1-rack scale-out counterpart of [`sim_config`]: same workload
/// parameters, one leaf rack, spine layer disabled (`spine_cache_items:
/// 0` — with a single rack there are no globally hot keys for a spine to
/// absorb that the leaf does not already cache).
fn multirack_config(seed: u64) -> MultiRackConfig {
    MultiRackConfig {
        servers_per_rack: 8,
        num_keys: NUM_KEYS,
        value_len: VALUE_LEN,
        leaf_cache_items: CACHE_ITEMS,
        spine_cache_items: 0,
        racks: 1,
        partition_seed: PARTITION_SEED,
        seed,
        ..MultiRackConfig::default()
    }
}

/// The same deterministic script shape `fabric_differential` uses:
/// mostly-hot reads, a write mix, occasional deletes, controller cycles
/// and time advances.
fn script(seed: u64) -> Vec<ScriptOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ff);
    let hot = CACHE_ITEMS as u64;
    let mut ops = Vec::new();
    for i in 0..300u64 {
        let id = if rng.random::<f64>() < 0.7 {
            rng.random::<u64>() % hot
        } else {
            hot + rng.random::<u64>() % 200
        };
        let r = rng.random::<f64>();
        if r < 0.60 {
            ops.push(ScriptOp::Get(id));
        } else if r < 0.85 {
            ops.push(ScriptOp::Put(id, (i % 251) as u8 + 1));
        } else if r < 0.93 {
            ops.push(ScriptOp::Delete(id));
        } else {
            ops.push(ScriptOp::Controller);
        }
        if i % 41 == 0 {
            ops.push(ScriptOp::AdvanceMs(1));
        }
    }
    ops.push(ScriptOp::Controller);
    ops
}

/// Runs a script through the multi-rack fabric, mirroring
/// [`RackSim::run_script`] op for op.
fn run_script_on_multirack(mr: &MultiRack, ops: &[ScriptOp]) -> Vec<Option<Response>> {
    let mut client = mr.client(0);
    let mut results = Vec::new();
    for op in ops {
        match *op {
            ScriptOp::Get(id) => {
                results.push(client.get(Key::from_u64(id)).map(|r| r.into_response()));
            }
            ScriptOp::Put(id, fill) => {
                let value = Value::filled(fill, VALUE_LEN);
                results.push(
                    client
                        .put(Key::from_u64(id), value)
                        .map(|r| r.into_response()),
                );
            }
            ScriptOp::Delete(id) => {
                results.push(client.delete(Key::from_u64(id)).map(|r| r.into_response()));
            }
            ScriptOp::Controller => {
                mr.run_controller();
            }
            ScriptOp::AdvanceMs(ms) => {
                mr.advance(ms * 1_000_000);
                mr.tick();
            }
        }
    }
    results
}

fn store_contents<H: RackHandle>(rack: &H) -> Vec<Option<(Value, u32)>> {
    (0..NUM_KEYS)
        .map(|id| {
            let key = Key::from_u64(id);
            let home = rack.addressing().home_of(&key);
            rack.server(home.server)
                .fetch(&key)
                .map(|item| (item.value, item.version))
        })
        .collect()
}

fn cache_membership<H: RackHandle>(rack: &H) -> Vec<u64> {
    (0..NUM_KEYS)
        .filter(|&id| rack.is_cached(&Key::from_u64(id)))
        .collect()
}

#[test]
fn one_rack_multirack_equals_rack_sim_exactly() {
    let seed = seed_from_env(0x5ca1_d1ff);
    let ops = script(seed);

    let mut sim = RackSim::new(sim_config(seed)).expect("valid sim config");
    let mr = MultiRack::new(multirack_config(seed)).expect("valid multirack config");
    let leaf = mr.leaf(0);

    // Identically assembled: same pre-script switch state and cache fill.
    assert_eq!(sim.switch_stats(), leaf.switch_stats(), "seed {seed:#x}");
    assert_eq!(
        cache_membership(&sim),
        cache_membership(leaf),
        "initial cache membership diverged (seed {seed:#x})"
    );
    assert_eq!(
        store_contents(&sim),
        store_contents(leaf),
        "initial store contents diverged (seed {seed:#x})"
    );

    let sim_replies = sim.run_script(&ops);
    let mr_replies = run_script_on_multirack(&mr, &ops);

    // Same replies, element-wise — including the served-by-cache flag.
    assert_eq!(sim_replies.len(), mr_replies.len());
    for (i, (s, m)) in sim_replies.iter().zip(mr_replies.iter()).enumerate() {
        assert_eq!(s, m, "reply {i} diverged (seed {seed:#x}, op {:?})", ops[i]);
    }

    // Same final logical state and the same counters, everywhere.
    assert_eq!(
        store_contents(&sim),
        store_contents(leaf),
        "final store contents diverged (seed {seed:#x})"
    );
    assert_eq!(
        cache_membership(&sim),
        cache_membership(leaf),
        "final cache membership diverged (seed {seed:#x})"
    );
    assert_eq!(sim.cached_keys(), leaf.cached_keys());
    assert_eq!(
        sim.switch_stats(),
        leaf.switch_stats(),
        "switch counters diverged (seed {seed:#x})"
    );
    assert_eq!(
        sim.controller_stats(),
        leaf.controller_stats(),
        "controller counters diverged (seed {seed:#x})"
    );
    for i in 0..8 {
        assert_eq!(
            sim.server_stats(i),
            leaf.server_stats(i),
            "server {i} counters diverged (seed {seed:#x})"
        );
    }

    // The scale-out bookkeeping saw every data packet cross the one ToR,
    // none spine-served, none dropped.
    let report = mr.report();
    assert_eq!(report.racks, 1);
    assert_eq!(report.spines, 0);
    assert_eq!(report.spine_hits, 0);
    assert_eq!(report.dead_drops, 0);
    let data_ops = ops
        .iter()
        .filter(|op| {
            matches!(
                op,
                ScriptOp::Get(_) | ScriptOp::Put(..) | ScriptOp::Delete(_)
            )
        })
        .count() as u64;
    assert_eq!(report.tor_loads, vec![data_ops], "seed {seed:#x}");
}

/// Adding the spine layer on top of that same single rack must not change
/// any *value* a client observes (the serving path may move to the spine,
/// which is the point), and the final stores must stay identical.
#[test]
fn one_rack_spine_layer_is_value_transparent() {
    let seed = seed_from_env(0x5ca1_d1fe);
    let ops = script(seed);

    let mut config = multirack_config(seed);
    config.spine_cache_items = 32;
    let spined = MultiRack::new(config).expect("valid multirack config");
    let mut sim = RackSim::new(sim_config(seed)).expect("valid sim config");

    let sim_replies = sim.run_script(&ops);
    let mr_replies = run_script_on_multirack(&spined, &ops);
    assert_eq!(sim_replies.len(), mr_replies.len());
    for (i, (s, m)) in sim_replies.iter().zip(mr_replies.iter()).enumerate() {
        let logical = |r: &Option<Response>| {
            r.clone().map(|resp| match resp {
                Response::Value { key, value, .. } => Response::Value {
                    key,
                    value,
                    from_cache: false,
                },
                other => other,
            })
        };
        assert_eq!(
            logical(s),
            logical(m),
            "logical reply {i} diverged (seed {seed:#x}, op {:?})",
            ops[i]
        );
    }
    assert_eq!(
        store_contents(&sim),
        store_contents(spined.leaf(0)),
        "final store contents diverged (seed {seed:#x})"
    );
    assert!(spined.report().spine_hits > 0, "spine never served");
}
