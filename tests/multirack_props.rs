//! Property-based tests of the multi-rack scale-out layer: the
//! DistCache-style load-balance claim, checked on the *deployed*
//! two-layer fabric rather than the closed-form model.
//!
//! The claim under test: with a spine layer caching the globally hottest
//! keys (hashed to spines independently of the key → rack hash) and
//! power-of-two-choices routing between the two cache copies of each hot
//! key, the per-ToR load stays balanced — max/mean bounded by a small
//! constant — for arbitrary rack counts, keyspace sizes, Zipf skews and
//! hash seeds, *including adversarial hot-key placement* where the
//! entire head of the popularity distribution lands in one rack.
//!
//! Degenerate topologies (one rack, uniform keys, a keyspace small
//! enough to be entirely cached, a single key, no leaf caches) must not
//! panic or divide by zero.
//!
//! Seeded via `NETCACHE_TEST_SEED` (see `netcache::seed_from_env`).

use netcache::seed_from_env;
use netcache_proto::{Key, Value};
use netcache_sim::{MultiRack, MultiRackConfig};
use netcache_store::Partitioner;
use netcache_workload::ZipfGenerator;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Max/mean per-ToR load bound for the benign (non-normalized) tests —
/// uniform and near-uniform workloads where the ownership envelope is
/// close to 1.
const TOR_IMBALANCE_BOUND: f64 = 2.5;

/// The spine layer itself must never become the new hotspot: its
/// per-switch imbalance stays small regardless of workload (the key →
/// spine hash is independent of the key → rack hash).
const SPINE_IMBALANCE_BOUND: f64 = 2.0;

const VALUE_LEN: usize = 16;

fn config(racks: u32, num_keys: u64, theta: f64, seed: u64) -> MultiRackConfig {
    MultiRackConfig {
        servers_per_rack: 2,
        num_keys,
        theta,
        leaf_cache_items: 16,
        spine_cache_items: 64,
        racks,
        spines: 2,
        value_len: VALUE_LEN,
        seed,
        rack_seed: seed ^ 0x7261_636b,
        spine_seed: seed ^ 0x7370_696e,
        ..MultiRackConfig::default()
    }
}

/// Runs `ops` Zipf-distributed reads through the fabric (controller
/// cycles interleaved, as a deployment would run them), asserting every
/// reply is present and carries the loaded value.
fn run_reads(mr: &MultiRack, theta: f64, ops: u64, seed: u64) -> Result<(), TestCaseError> {
    let zipf = ZipfGenerator::new(mr.config().num_keys, theta);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0b5e);
    let mut client = mr.client(0);
    for i in 0..ops {
        let id = zipf.sample(&mut rng);
        let resp = client.get(Key::from_u64(id));
        let resp = resp.ok_or_else(|| {
            TestCaseError::fail(format!(
                "read {i} of key {id} dropped on a loss-free fabric"
            ))
        })?;
        prop_assert_eq!(
            resp.value(),
            Some(&Value::for_item(id, VALUE_LEN)),
            "read {} of key {} returned the wrong value",
            i,
            id
        );
        if i % 200 == 199 {
            mr.advance(1_000_000);
            mr.run_controller();
        }
    }
    Ok(())
}

/// The per-rack *ownership traffic envelope*: the share of all query
/// traffic homed in each rack, i.e. the load distribution if every query
/// went to its key's owner. Hash partitioning makes this the floor no
/// cache layer can improve for the uncached tail — DistCache's balance
/// claim is relative to it: the deployed fabric must not *add* imbalance
/// on top (and under skew it must *remove* the head's contribution,
/// which the adversarial test below checks explicitly).
fn ownership_envelope(racks: u32, rack_seed: u64, num_keys: u64, theta: f64) -> Vec<f64> {
    let p = Partitioner::new(racks, rack_seed);
    let zipf = ZipfGenerator::new(num_keys, theta);
    let mut shares = vec![0.0f64; racks as usize];
    for id in 0..num_keys {
        shares[p.partition_of(&Key::from_u64(id)) as usize] += zipf.probability(id);
    }
    shares
}

fn imbalance_of(shares: &[f64]) -> f64 {
    let max = shares.iter().cloned().fold(0.0, f64::max);
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;
    if mean > 0.0 {
        max / mean
    } else {
        0.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// The headline property: per-ToR max/mean load stays within a
    /// constant factor of the ownership envelope for arbitrary rack
    /// counts, keyspace sizes, skews and hash seeds (calibrated: the
    /// observed worst ratio across a 40-case sweep is 1.12, driven by
    /// sampling noise at low skew; at high skew the fabric *beats* the
    /// envelope because the spine absorbs the head) — and every read on
    /// the loss-free fabric returns the right value.
    #[test]
    fn p2c_keeps_tor_load_balanced(
        racks in 2u32..=6,
        num_keys in 300u64..1200,
        theta in 0.0f64..0.95,
        salt in any::<u64>(),
    ) {
        let seed = seed_from_env(0x10ad_ba1a) ^ salt;
        let mr = MultiRack::new(config(racks, num_keys, theta, seed))
            .expect("valid config");
        run_reads(&mr, theta, 1_200, seed)?;
        let report = mr.report();
        let envelope = imbalance_of(&ownership_envelope(
            racks,
            mr.config().rack_seed,
            num_keys,
            theta,
        ));
        let imbalance = report.tor_imbalance();
        prop_assert!(
            imbalance <= envelope * 1.3 + 0.2,
            "ToR imbalance {} over envelope {} (racks {}, keys {}, theta {}, loads {:?})",
            imbalance, envelope, racks, num_keys, theta, report.tor_loads
        );
        prop_assert!(
            report.spine_imbalance() <= SPINE_IMBALANCE_BOUND,
            "spine imbalance {} (loads {:?})",
            report.spine_imbalance(), report.spine_loads
        );
    }
}

/// Adversarial hot-key placement, by construction rather than by seed
/// search: the popularity ranking is permuted so that *every* hottest
/// rank maps to a key homed in one designated rack. Leaf-only caching
/// cannot help — that rack's ToR still carries every query to its keys —
/// but the spine layer learns the global heavy hitters from its own
/// sketch (the cross-rack aggregation path) and absorbs them above the
/// ToRs, restoring balance on the steady-state window.
#[test]
fn adversarial_placement_is_neutralized_by_the_spine() {
    let seed = seed_from_env(0xadda_005e);
    let racks = 4u32;
    let num_keys = 600u64;
    let theta = 0.9;
    let mut c = config(racks, num_keys, theta, seed);
    c.hot_threshold = 16;
    let leaf_only = {
        let mut c = c.clone();
        c.spine_cache_items = 0;
        MultiRack::new(c).expect("valid config")
    };
    let spined = MultiRack::new(c).expect("valid config");

    // rank → key permutation: the victim rack's keys take the hottest
    // ranks (ordered by id, matching the static popularity order), the
    // rest of the keyspace follows.
    let victim = spined.rack_of(&Key::from_u64(0));
    let p = Partitioner::new(racks, spined.config().rack_seed);
    let mut perm: Vec<u64> = (0..num_keys)
        .filter(|&id| p.partition_of(&Key::from_u64(id)) == victim)
        .collect();
    perm.extend((0..num_keys).filter(|&id| p.partition_of(&Key::from_u64(id)) != victim));

    let zipf = ZipfGenerator::new(num_keys, theta);
    let measure = |mr: &MultiRack| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xad5e);
        let mut client = mr.client(0);
        let mut run_phase = |ops: u64| {
            for i in 0..ops {
                let id = perm[zipf.sample(&mut rng) as usize];
                let resp = client.get(Key::from_u64(id)).expect("loss-free read");
                assert_eq!(resp.value(), Some(&Value::for_item(id, VALUE_LEN)));
                if i % 150 == 149 {
                    // Generous virtual time per cycle: the spine controller
                    // needs insertion budget to take over the head.
                    mr.advance(10_000_000);
                    mr.run_controller();
                }
            }
        };
        // Warmup: let the spine's sketch discover the permuted head and
        // its controller re-populate the cache accordingly.
        run_phase(1_500);
        let before = mr.report().tor_loads.clone();
        // Steady state: measure the balance of the post-adaptation window.
        run_phase(1_500);
        let after = mr.report().tor_loads;
        let delta: Vec<f64> = after
            .iter()
            .zip(before.iter())
            .map(|(a, b)| (a - b) as f64)
            .collect();
        imbalance_of(&delta)
    };

    let with_spine = measure(&spined);
    let without = measure(&leaf_only);
    assert!(
        with_spine <= TOR_IMBALANCE_BOUND,
        "adversarial placement broke the bound: {with_spine} (leaf-only reference {without})"
    );
    assert!(
        with_spine < without,
        "spine layer should improve adversarial balance: {with_spine} vs {without}"
    );
}

// --- Degenerate topologies: must not panic, divide by zero, or lose data.

#[test]
fn single_rack_degenerates_cleanly() {
    let seed = seed_from_env(0xdead_0001);
    let mr = MultiRack::new(config(1, 300, 0.5, seed)).expect("one rack is valid");
    run_reads(&mr, 0.5, 300, seed).expect("reads succeed");
    let report = mr.report();
    // One rack: max == mean by definition.
    assert_eq!(report.tor_imbalance(), 1.0);
}

#[test]
fn uniform_workload_is_balanced_without_skew() {
    let seed = seed_from_env(0xdead_0002);
    let mr = MultiRack::new(config(4, 800, 0.0, seed)).expect("valid config");
    run_reads(&mr, 0.0, 1_600, seed).expect("reads succeed");
    let report = mr.report();
    assert!(
        report.tor_imbalance() <= TOR_IMBALANCE_BOUND,
        "uniform workload imbalance {} (loads {:?})",
        report.tor_imbalance(),
        report.tor_loads
    );
}

#[test]
fn fully_cached_keyspace_serves_from_the_cache_layers() {
    let seed = seed_from_env(0xdead_0003);
    // 32 keys, 16 leaf slots per rack and 64 spine slots: everything hot,
    // everything cacheable somewhere.
    let mr = MultiRack::new(config(2, 32, 0.9, seed)).expect("valid config");
    run_reads(&mr, 0.9, 400, seed).expect("reads succeed");
    let report = mr.report();
    assert!(
        report.spine_hits + report.leaf_hits > 0,
        "an all-hot keyspace should be cache-served: {report:?}"
    );
}

#[test]
fn single_key_keyspace_does_not_panic() {
    let seed = seed_from_env(0xdead_0004);
    let mr = MultiRack::new(config(3, 1, 0.0, seed)).expect("valid config");
    run_reads(&mr, 0.0, 100, seed).expect("reads succeed");
    // All load legitimately lands on one rack (plus the spine): the
    // imbalance metric is computed, not asserted — one key is outside the
    // balance claim — but it must be a finite number.
    assert!(mr.report().tor_imbalance().is_finite());
}

#[test]
fn zero_ops_report_has_no_division_by_zero() {
    let seed = seed_from_env(0xdead_0005);
    let mr = MultiRack::new(config(2, 100, 0.5, seed)).expect("valid config");
    let report = mr.report();
    assert_eq!(report.tor_imbalance(), 0.0, "idle fabric reports 0.0");
    assert_eq!(report.server_imbalance(), 0.0);
}

#[test]
fn spine_only_topology_serves_without_leaf_caches() {
    let seed = seed_from_env(0xdead_0006);
    let mut c = config(3, 200, 0.8, seed);
    c.leaf_cache_items = 0;
    let mr = MultiRack::new(c).expect("spine-only is valid");
    run_reads(&mr, 0.8, 600, seed).expect("reads succeed");
    let report = mr.report();
    assert!(
        report.spine_hits > 0,
        "spine must serve the head: {report:?}"
    );
    assert_eq!(report.leaf_hits, 0, "no leaf cache, no leaf hits");
}

/// Same configuration, same seed, twice: byte-identical reports. The
/// whole fabric — hashing, p2c tie-breaks, controller sampling — is
/// deterministic, which is what makes the CI seed matrix meaningful.
#[test]
fn fabric_is_deterministic_per_seed() {
    let seed = seed_from_env(0xdead_0007);
    let run = || {
        let mr = MultiRack::new(config(4, 500, 0.9, seed)).expect("valid config");
        run_reads(&mr, 0.9, 1_000, seed).expect("reads succeed");
        mr.report().to_json()
    };
    assert_eq!(run(), run(), "same seed must reproduce the same report");
}
