//! Memory reorganization end-to-end (§4.4.2).
//!
//! Consolidation itself (stranded free units becoming a whole bin) is
//! covered at the allocator level in `netcache-controller`'s unit and
//! property tests, where item counts can exceed bin counts. At rack level
//! the critical property is *safety*: a reorganization moves live values
//! between register slots while queries fly, and must never corrupt a
//! value, lose cache residency of a valid entry, or resurrect an invalid
//! one.

use netcache::{Rack, RackConfig, RackHandle};
use netcache_proto::{Key, Value};

/// A rack whose value memory is small (8 arrays × 8 indexes = 64 units)
/// so reorganizations actually move things.
fn tiny_memory_rack() -> Rack {
    let mut config = RackConfig::small(4);
    config.switch.value_slots = 8;
    config.switch.cache_capacity = 8;
    // An entry cannot span more bins than exist; shrink the recirc
    // budget along with the memory.
    config.switch.recirc_passes = 8;
    config.controller.cache_capacity = 8;
    Rack::new(config).expect("valid config")
}

/// Fills the cache with mixed-size items and fragments it by eviction.
fn fragmented_rack() -> (Rack, Vec<(u64, usize)>) {
    let r = tiny_memory_rack();
    let mut c = r.client(0);
    let sizes = [48usize, 80, 16, 128, 48, 80, 16, 48];
    let mut live = Vec::new();
    for (id, &len) in sizes.iter().enumerate() {
        let id = id as u64;
        c.put(Key::from_u64(id), Value::for_item(id, len))
            .expect("ack");
        live.push((id, len));
    }
    r.populate_cache((0..8).map(Key::from_u64));
    // Evict a couple of mid-bin items to scatter free units.
    r.with_switch(|sw| {
        r.with_controller(|ctl| {
            ctl.evict_key(sw, &Key::from_u64(1));
            ctl.evict_key(sw, &Key::from_u64(4));
        })
    });
    live.retain(|(id, _)| *id != 1 && *id != 4);
    (r, live)
}

#[test]
fn moves_preserve_every_value_and_residency() {
    let (r, live) = fragmented_rack();
    let moved = r.reorganize_cache();
    assert!(moved > 0, "fragmented memory should produce moves");
    let mut c = r.client(0);
    for (id, len) in live {
        let resp = c.get(Key::from_u64(id)).expect("reply");
        assert!(resp.served_by_cache(), "key {id} lost cache residency");
        assert_eq!(
            resp.value().expect("value"),
            &Value::for_item(id, len),
            "key {id} corrupted by the move"
        );
    }
}

#[test]
fn reorganization_is_idempotent() {
    let (r, live) = fragmented_rack();
    r.reorganize_cache();
    let second = r.reorganize_cache();
    assert_eq!(second, 0, "a freshly packed cache has nothing to move");
    let mut c = r.client(0);
    for (id, len) in live {
        assert_eq!(
            c.get(Key::from_u64(id)).expect("reply").value().expect("v"),
            &Value::for_item(id, len)
        );
    }
}

#[test]
fn invalid_entries_stay_invalid_across_moves() {
    let (r, _) = fragmented_rack();
    let mut c = r.client(0);
    // Make key 2 invalid: drop its update and all retries.
    r.faults().drop_next(netcache_proto::Op::CacheUpdate, 6);
    c.put(Key::from_u64(2), Value::filled(0x99, 16))
        .expect("ack");
    r.reorganize_cache();
    // Key 2 must still be served by the server with the new value — the
    // moved stale copy must not have been revalidated.
    let resp = c.get(Key::from_u64(2)).expect("reply");
    assert!(!resp.served_by_cache(), "invalid entry resurrected by move");
    assert_eq!(resp.value().expect("v"), &Value::filled(0x99, 16));
}

#[test]
fn writes_after_reorganization_stay_coherent() {
    let (r, live) = fragmented_rack();
    r.reorganize_cache();
    let mut c = r.client(0);
    // Write-through must target the *new* slots.
    for (id, len) in &live {
        c.put(Key::from_u64(*id), Value::filled(*id as u8, *len))
            .expect("ack");
        let resp = c.get(Key::from_u64(*id)).expect("reply");
        assert!(
            resp.served_by_cache(),
            "key {id} update missed the moved slots"
        );
        assert_eq!(resp.value().expect("v"), &Value::filled(*id as u8, *len));
    }
}
