//! Runtime-backend differential tests: portable vs batched vs io_uring.
//!
//! The `SocketDriver` abstraction promises that the choice of I/O
//! backend is invisible to rack semantics. This suite replays one seeded
//! workload over every backend the host kernel supports and asserts the
//! racks converge to the same logical outcome: the same replies (values
//! only — cache-vs-server serving path is transport timing), the same
//! final store contents, and the same cache membership. Per-packet
//! transport counters are free to differ — syscall folding is the whole
//! point of the faster backends — but each rack's counters must still be
//! internally consistent (packets seen, backend label correct).
//!
//! When the kernel lacks io_uring the uring leg is skipped with a
//! notice and the portable/batched comparison still runs, so CI on old
//! kernels stays green without silently losing coverage.
//!
//! Seeded via `NETCACHE_TEST_SEED` (see `netcache::seed_from_env`).

use netcache::runtime::{uring_available, RuntimeKind};
use netcache::udp::{PipelineOp, UdpRack};
use netcache::{seed_from_env, RackHandle};
use netcache_client::Response;
use netcache_proto::{Key, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const NUM_KEYS: u64 = 400;
const VALUE_LEN: usize = 32;
const CACHE_ITEMS: u64 = 16;

/// Every backend this kernel can actually run, most capable first.
fn available_backends() -> Vec<RuntimeKind> {
    let mut kinds = Vec::new();
    if uring_available() {
        kinds.push(RuntimeKind::Uring);
    } else {
        eprintln!("notice: io_uring unavailable on this kernel; uring leg skipped");
    }
    if RuntimeKind::Batched.effective() == RuntimeKind::Batched {
        kinds.push(RuntimeKind::Batched);
    }
    kinds.push(RuntimeKind::Portable);
    kinds
}

fn start_rack(kind: RuntimeKind) -> UdpRack {
    let mut config = netcache::RackConfig::small(4);
    config.controller.cache_capacity = CACHE_ITEMS as usize;
    let rack = UdpRack::start_with_runtime(config, kind).expect("loopback rack");
    rack.load_dataset(NUM_KEYS, VALUE_LEN);
    rack.populate_cache((0..CACHE_ITEMS).map(Key::from_u64));
    rack
}

/// Strips the serving-path flag: over real sockets a Get can race a
/// post-write `CacheUpdate` and be answered by the server instead of the
/// switch. The value must match; where it came from is timing.
fn logical(reply: Option<Response>) -> Option<Response> {
    reply.map(|r| match r {
        Response::Value { key, value, .. } => Response::Value {
            key,
            value,
            from_cache: false,
        },
        other => other,
    })
}

fn store_contents(rack: &UdpRack) -> Vec<Option<(Value, u32)>> {
    (0..NUM_KEYS)
        .map(|id| {
            let key = Key::from_u64(id);
            let home = rack.addressing().home_of(&key);
            rack.server(home.server)
                .fetch(&key)
                .map(|item| (item.value, item.version))
        })
        .collect()
}

fn cache_membership(rack: &UdpRack) -> Vec<u64> {
    (0..NUM_KEYS)
        .filter(|&id| rack.is_cached(&Key::from_u64(id)))
        .collect()
}

/// Phase 1 drives sequential ops reply-for-reply; phase 2 runs a
/// pipelined burst (the window is what fills the rings on the batched
/// and uring backends); then final state must agree across every
/// backend pair.
#[test]
fn all_runtimes_agree_on_seeded_workload() {
    let seed = seed_from_env(0x0d1f_4169);
    let kinds = available_backends();
    let racks: Vec<UdpRack> = kinds.iter().map(|&k| start_rack(k)).collect();

    // Each rack must be running (and reporting) the backend we asked
    // for, modulo the documented fallback ladder.
    for (rack, &kind) in racks.iter().zip(&kinds) {
        assert_eq!(
            rack.runtime_kind().effective(),
            kind.effective(),
            "rack came up on the wrong backend"
        );
    }

    // Phase 1: sequential ops, reply-for-reply equality across all
    // racks, with the serving path normalized away.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clients: Vec<_> = racks.iter().map(|r| r.client(0)).collect();
    for i in 0..120u64 {
        let id = if rng.random::<f64>() < 0.7 {
            rng.random::<u64>() % CACHE_ITEMS
        } else {
            CACHE_ITEMS + rng.random::<u64>() % 80
        };
        let key = Key::from_u64(id);
        let r = rng.random::<f64>();
        let replies: Vec<_> = if r < 0.6 {
            clients.iter_mut().map(|c| c.get_with_retry(key)).collect()
        } else if r < 0.9 {
            let value = Value::filled((i % 251) as u8 + 1, VALUE_LEN);
            clients
                .iter_mut()
                .map(|c| c.put_with_retry(key, value.clone()))
                .collect()
        } else {
            clients
                .iter_mut()
                .map(|c| c.delete_with_retry(key))
                .collect()
        };
        let logical_replies: Vec<_> = replies
            .into_iter()
            .map(|out| logical(out.response.map(|c| c.into_response())))
            .collect();
        for (j, reply) in logical_replies.iter().enumerate().skip(1) {
            assert_eq!(
                &logical_replies[0],
                reply,
                "op {i} diverged: {} vs {} (seed {seed:#x})",
                kinds[0].name(),
                kinds[j].name()
            );
        }
    }

    // Phase 2: pipelined burst with puts on distinct keys, so the final
    // store state is independent of in-flight completion order.
    let ops: Vec<PipelineOp> = (0..300u64)
        .map(|i| {
            if i % 5 == 4 {
                PipelineOp::Put(
                    Key::from_u64(200 + i),
                    Value::filled((i % 251) as u8 + 1, VALUE_LEN),
                )
            } else if i % 3 == 0 {
                PipelineOp::Get(Key::from_u64(i % CACHE_ITEMS))
            } else {
                PipelineOp::Get(Key::from_u64(CACHE_ITEMS + i % 80))
            }
        })
        .collect();
    for (rack, &kind) in racks.iter().zip(&kinds) {
        let report = rack.client(1).run_pipelined(&ops, 32);
        assert_eq!(
            report.completed,
            ops.len() as u64,
            "{}: pipelined ops lost (seed {seed:#x}, {report:?})",
            kind.name()
        );
        assert_eq!(report.abandoned, 0, "{}: {report:?}", kind.name());
    }

    // Final state: every backend pair must agree exactly, and every
    // rack's transport counters must be self-consistent and labeled
    // with the backend that actually ran.
    let baseline_store = store_contents(&racks[0]);
    let baseline_cache = cache_membership(&racks[0]);
    for (rack, &kind) in racks.iter().zip(&kinds).skip(1) {
        assert_eq!(
            baseline_store,
            store_contents(rack),
            "final store contents diverged: {} vs {} (seed {seed:#x})",
            kinds[0].name(),
            kind.name()
        );
        assert_eq!(
            baseline_cache,
            cache_membership(rack),
            "cache membership diverged: {} vs {} (seed {seed:#x})",
            kinds[0].name(),
            kind.name()
        );
    }
    for (rack, &kind) in racks.iter().zip(&kinds) {
        let stats = rack.transport_stats();
        assert!(
            stats.packets() > 0,
            "{}: rack served traffic but counted no packets: {stats:?}",
            kind.name()
        );
        assert_eq!(
            stats.backend,
            kind.name(),
            "transport stats mislabeled (seed {seed:#x}): {stats:?}"
        );
        if kind.effective() == RuntimeKind::Uring {
            assert!(
                stats.cqe_batches > 0,
                "uring rack never drained a completion batch: {stats:?}"
            );
        }
    }
    for rack in racks {
        rack.stop();
    }
}
