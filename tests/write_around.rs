//! Write-around ablation (§4.3): why NetCache updates the cache in the
//! data plane rather than letting the control plane refresh it.

use netcache::{Rack, RackConfig, RackHandle};
use netcache_proto::{Key, Value};

fn rack(dataplane_updates: bool) -> Rack {
    let mut config = RackConfig::small(4);
    config.controller.cache_capacity = 16;
    config.dataplane_updates = dataplane_updates;
    let rack = Rack::new(config).expect("valid config");
    rack.load_dataset(100, 64);
    rack.populate_cache((0..16).map(Key::from_u64));
    rack
}

#[test]
fn write_around_leaves_entry_invalid_until_controller_repairs() {
    let r = rack(false);
    let mut c = r.client(0);
    c.put(Key::from_u64(3), Value::filled(0x33, 64))
        .expect("ack");
    // No data-plane update: reads keep falling through to the server.
    let resp = c.get(Key::from_u64(3)).expect("reply");
    assert!(
        !resp.served_by_cache(),
        "write-around must not heal in-band"
    );
    assert_eq!(resp.value().expect("v"), &Value::filled(0x33, 64));
    assert_eq!(
        r.server_stats(r.addressing().home_of(&Key::from_u64(3)).server)
            .updates_sent,
        0
    );

    // The controller's repair pass refreshes the entry.
    r.advance(100_000_000);
    r.run_controller();
    assert!(
        r.controller_stats().repairs >= 1,
        "{:?}",
        r.controller_stats()
    );
    let resp = c.get(Key::from_u64(3)).expect("reply");
    assert!(resp.served_by_cache());
    assert_eq!(resp.value().expect("v"), &Value::filled(0x33, 64));
}

#[test]
fn write_through_heals_immediately_no_repairs_needed() {
    let r = rack(true);
    let mut c = r.client(0);
    c.put(Key::from_u64(3), Value::filled(0x33, 64))
        .expect("ack");
    assert!(c.get(Key::from_u64(3)).expect("reply").served_by_cache());
    r.advance(100_000_000);
    r.run_controller();
    assert_eq!(r.controller_stats().repairs, 0);
}

#[test]
fn repair_evicts_oversized_values() {
    // A write grows the value beyond its allocated slots: the data plane
    // refuses the update; the repair pass must evict rather than corrupt.
    let r = rack(true);
    let mut c = r.client(0);
    // Key 3 was cached with 64 B (4 units); write 128 B (8 units).
    c.put(Key::from_u64(3), Value::filled(0x44, 128))
        .expect("ack");
    let resp = c.get(Key::from_u64(3)).expect("reply");
    assert!(!resp.served_by_cache(), "oversized update cannot apply");
    assert_eq!(resp.value().expect("v"), &Value::filled(0x44, 128));

    r.advance(100_000_000);
    r.run_controller();
    // The repair pass could not reuse 4 slots for 8 units: entry evicted
    // (and possibly re-inserted later by the HH path with a fresh slot).
    let resp = c.get(Key::from_u64(3)).expect("reply");
    assert_eq!(resp.value().expect("v"), &Value::filled(0x44, 128));
}

#[test]
fn repair_pass_handles_deleted_keys() {
    let r = rack(false);
    let mut c = r.client(0);
    c.delete(Key::from_u64(5)).expect("ack");
    r.advance(100_000_000);
    r.run_controller();
    assert!(
        !r.is_cached(&Key::from_u64(5)),
        "deleted key must be evicted"
    );
    assert!(c.get(Key::from_u64(5)).expect("reply").not_found());
}
