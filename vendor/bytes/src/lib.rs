//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of `bytes` it actually uses: the
//! [`Buf`] / [`BufMut`] cursor traits over `&[u8]` and `Vec<u8>`, with
//! big-endian integer accessors. Semantics match the real crate for this
//! subset (including panicking on underflow, which callers guard against
//! with explicit length checks).

/// Read cursor over a byte buffer (big-endian integer accessors).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 bytes remain.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor over a growable byte buffer (big-endian integer writers).
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = Vec::new();
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0123_4567_89ab_cdef);
        buf.put_slice(&[1, 2, 3]);

        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_u8(), 0xab);
        assert_eq!(cur.get_u16(), 0x1234);
        assert_eq!(cur.get_u32(), 0xdead_beef);
        assert_eq!(cur.get_u64(), 0x0123_4567_89ab_cdef);
        let mut rest = [0u8; 3];
        cur.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "Buf underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1];
        let _ = cur.get_u16();
    }
}
