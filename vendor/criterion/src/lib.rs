//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter` / `iter_batched`, `BatchSize`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple median-of-samples wall-clock harness instead of
//! criterion's full statistical machinery. Output is one line per
//! benchmark: `name  time: [median ns/iter]`.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub runs one routine call
/// per setup call regardless of variant, so these are distinctions without
/// a difference here — kept for source compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: u64,
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    median_ns: f64,
}

impl Bencher {
    fn measure(&mut self, mut one_iter: impl FnMut() -> Duration) {
        // Warmup.
        for _ in 0..3 {
            let _ = one_iter();
        }
        let mut times: Vec<u128> = (0..self.samples).map(|_| one_iter().as_nanos()).collect();
        times.sort_unstable();
        self.median_ns = times[times.len() / 2] as f64;
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }
}

/// Top-level benchmark registry/configuration.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut bencher);
        println!("{name:<48} time: [{:.1} ns/iter]", bencher.median_ns);
    }

    /// Runs a single named benchmark. Accepts any string-ish name, as the
    /// real criterion does (`String` from `format!`, `&str`, …).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        self.run_one(name.as_ref(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group (and the parent — the
    /// stub keeps one knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        self.parent.run_one(&full, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group; supports both the list form
/// `criterion_group!(benches, f1, f2)` and the braced config form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default()
            .sample_size(5)
            .bench_function("t", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
        assert!(calls >= 5);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut criterion = Criterion::default().sample_size(4);
        let mut group = criterion.benchmark_group("g");
        let mut seen = Vec::new();
        let mut next = 0u32;
        group.bench_function("b", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| seen.push(v),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(seen.len() >= 4);
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1));
    }
}
