//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` behind parking_lot's
//! poison-free API surface (the subset this workspace uses: `Mutex::new`,
//! `lock`, `try_lock`, `into_inner`, `get_mut`; `RwLock::new`, `read`,
//! `write`, `try_read`, `try_write`, `into_inner`, `get_mut`). A poisoned
//! std lock means a thread panicked while holding it; parking_lot ignores
//! poisoning, so we recover the guard in that case rather than propagating
//! the poison error.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard, TryLockError,
};

/// Poison-free mutex with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Poison-free reader-writer lock with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// RAII shared-read guard; the lock is released on drop.
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// RAII exclusive-write guard; the lock is released on drop.
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable again.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_shared_reads_exclusive_writes() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
            assert!(l.try_write().is_none(), "readers exclude writers");
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn rwlock_survives_panicked_writer() {
        let l = Arc::new(RwLock::new(0u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the std rwlock");
        })
        .join();
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
