//! `any::<T>()` — uniform generation for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{RngExt, Standard};
use std::fmt;
use std::marker::PhantomData;

/// Strategy producing uniformly distributed `T`s.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over all values of `T` (primitives only here).
pub fn any<T: Standard + fmt::Debug>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Standard + fmt::Debug> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random::<T>()
    }
}
