//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min as u64..=self.max_inclusive as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Generates vectors of elements from `elem`, sized within `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>`; `size` bounds the number of insert
/// attempts, so duplicates may yield a slightly smaller set (the real
/// crate retries — callers here only rely on the upper bound).
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Generates hash sets of elements from `elem`.
pub fn hash_set<S>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        elem,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let attempts = self.size.draw(rng);
        (0..attempts).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use rand::SeedableRng;

    #[test]
    fn vec_length_within_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = vec(any::<u8>(), 2..10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..10).contains(&v.len()), "len={}", v.len());
        }
    }

    #[test]
    fn hash_set_respects_upper_bound() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = hash_set(any::<u32>(), 0..200);
        for _ in 0..20 {
            assert!(s.generate(&mut rng).len() < 200);
        }
    }
}
