//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small generate-and-check property runner with proptest's macro and
//! strategy surface (the subset the test suites use). Differences from the
//! real crate:
//!
//! - **No shrinking.** A failing case is reported with its full generated
//!   input and the per-case seed that regenerates it.
//! - **Seeding is explicit.** Every run derives its case seeds from a base
//!   seed taken from `NETCACHE_TEST_SEED` (or `PROPTEST_SEED`), so any
//!   failure in a log is reproducible by exporting the printed value.
//! - **Regression files.** `cc <16-hex>` entries in
//!   `<file>.proptest-regressions` are replayed as literal per-case seeds
//!   before the random cases. Longer (foreign-format) hashes are folded to
//!   a deterministic seed so checked-in files from the real proptest still
//!   contribute coverage. New failures are appended in the 16-hex format.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import the tests use: strategies, `any`, config, macros.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares seeded property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a normal
/// `#[test]`-annotated fn (the attribute is written explicitly by callers)
/// that replays regression seeds and then runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                file!(),
                stringify!($name),
                $config,
                ($($strat,)+),
                // The inner closure returns a Result so `?` on
                // TestCaseError works inside bodies, like real proptest.
                |($($arg,)+)| {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = result {
                        panic!("{}", err);
                    }
                },
            );
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property (panics like `assert!`; the
/// runner catches the panic and reports the generating seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}
