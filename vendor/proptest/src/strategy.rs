//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG state to a value. Unlike
//! real proptest there is no value tree / shrinking: `generate` returns the
//! final value directly.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Generates `Self::Value`s from a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice among boxed strategies (what [`crate::prop_oneof!`]
/// builds). Real proptest weights arms equally by default; so does this.
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_maps_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0u8..8, 10u32..=20).prop_map(|(a, b)| (a as u32) * 100 + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 100 >= 10 && v % 100 <= 20);
            assert!(v / 100 < 8);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
