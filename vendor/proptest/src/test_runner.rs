//! The property runner: seeding, case loop, regression-file replay.

use crate::strategy::Strategy;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Default base seed when no env override is set; any fixed value works.
const DEFAULT_BASE_SEED: u64 = 0x4e65_7443_6163_6865; // b"NetCache"

/// Failure value property bodies may `?`-propagate (the runner turns it
/// into a panic, which the case loop catches and reports).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Marks the case as failed with `reason`.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError(reason.to_string())
    }

    /// Marks the case as rejected; the stub treats it as a failure since
    /// it has no generate-retry loop.
    pub fn reject(reason: impl std::fmt::Display) -> Self {
        TestCaseError(format!("rejected: {reason}"))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (proptest calls this `Config`; the prelude
/// re-exports it as `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// Base seed for this process: `NETCACHE_TEST_SEED` (or `PROPTEST_SEED`),
/// decimal or `0x`-prefixed hex; otherwise a fixed default.
pub fn base_seed() -> u64 {
    for var in ["NETCACHE_TEST_SEED", "PROPTEST_SEED"] {
        if let Ok(raw) = std::env::var(var) {
            let raw = raw.trim();
            let parsed = if let Some(hex) = raw.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                raw.parse().ok()
            };
            if let Some(seed) = parsed {
                return seed;
            }
        }
    }
    DEFAULT_BASE_SEED
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `file!()` paths are workspace-root-relative but test binaries run with
/// the *package* root as cwd; walk suffixes until one exists on disk.
fn resolve_source_path(file: &str) -> Option<PathBuf> {
    let p = Path::new(file);
    if p.exists() {
        return Some(p.to_path_buf());
    }
    let components: Vec<_> = p.components().collect();
    for skip in 1..components.len() {
        let candidate: PathBuf = components[skip..].iter().collect();
        if candidate.exists() {
            return Some(candidate);
        }
    }
    None
}

fn regression_path(file: &str) -> Option<PathBuf> {
    resolve_source_path(file).map(|p| {
        let mut os = p.into_os_string();
        os.push(".proptest-regressions");
        PathBuf::from(os)
    })
}

/// Parses `cc <hex>` lines. 16-hex tokens are literal per-case seeds of
/// this runner; longer tokens (the real proptest's 64-hex hashes) are
/// folded through FNV-1a into a deterministic seed so foreign files still
/// add fixed coverage.
fn regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let token = rest.split_whitespace().next().unwrap_or("");
        if !token.is_empty() && token.chars().all(|c| c.is_ascii_hexdigit()) {
            let seed = if token.len() == 16 {
                u64::from_str_radix(token, 16).unwrap_or_else(|_| fnv1a(token.as_bytes()))
            } else {
                fnv1a(token.as_bytes())
            };
            seeds.push(seed);
        }
    }
    seeds
}

fn record_regression(file: &str, name: &str, case_seed: u64, value_debug: &str) {
    let Some(path) = regression_path(file) else {
        return;
    };
    // One debug line, truncated: the seed alone reproduces the case.
    let mut shown: String = value_debug.chars().take(300).collect();
    if shown.len() < value_debug.len() {
        shown.push('…');
    }
    let entry = format!("cc {case_seed:016x} # {name} failed; input: {shown}\n");
    let existing = fs::read_to_string(&path).unwrap_or_default();
    if existing.contains(&format!("cc {case_seed:016x}")) {
        return;
    }
    let mut out = existing;
    if out.is_empty() {
        out.push_str(
            "# Seeds for failure cases found by the offline proptest runner.\n\
             # Each `cc <16-hex>` token is a per-case seed replayed on every run.\n",
        );
    }
    out.push_str(&entry);
    let _ = fs::write(&path, out);
}

/// Runs one property: regression seeds first, then `config.cases` random
/// cases derived from [`base_seed`]. Panics (with reproduction info) on
/// the first failing case.
pub fn run<S, F>(file: &str, name: &str, config: Config, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let base = base_seed();
    let mut case_seeds: Vec<(u64, &str)> = Vec::new();
    let regressions: Vec<u64> = regression_path(file)
        .map(|p| regression_seeds(&p))
        .unwrap_or_default();
    for &seed in &regressions {
        case_seeds.push((seed, "regression"));
    }
    let name_salt = fnv1a(name.as_bytes());
    for case in 0..config.cases as u64 {
        case_seeds.push((splitmix64(base ^ name_salt ^ splitmix64(case)), "random"));
    }

    for (case_seed, kind) in case_seeds {
        let mut rng = TestRng::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        let value_debug = format!("{value:?}");
        let result = panic::catch_unwind(AssertUnwindSafe(|| test(value)));
        if let Err(payload) = result {
            if kind == "random" {
                record_regression(file, name, case_seed, &value_debug);
            }
            eprintln!(
                "proptest '{name}' failed ({kind} case, seed {case_seed:#018x}, \
                 base NETCACHE_TEST_SEED={base})\ninput: {value_debug}"
            );
            panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_value() {
        let s = crate::collection::vec(crate::arbitrary::any::<u16>(), 1..20);
        let mut a = TestRng::seed_from_u64(99);
        let mut b = TestRng::seed_from_u64(99);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn regression_parse_formats() {
        let dir = std::env::temp_dir().join("proptest-stub-test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("x.proptest-regressions");
        fs::write(
            &path,
            "# comment\ncc 00000000000000ff # ours\ncc 5241c37c1234567890abcdef5241c37c1234567890abcdef5241c37c12345678 # foreign\n",
        )
        .unwrap();
        let seeds = regression_seeds(&path);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], 0xff);
        // Foreign hash folds deterministically.
        assert_eq!(seeds[1], regression_seeds(&path)[1]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn run_passes_trivially() {
        run(
            "nonexistent-file.rs",
            "trivial",
            Config { cases: 8 },
            0u8..5,
            |v| assert!(v < 5),
        );
    }
}
