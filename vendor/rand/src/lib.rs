//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of `rand` 0.10 it uses: [`Rng`] / [`RngExt`] / [`SeedableRng`],
//! a deterministic [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! uniform sampling for primitive ints / `f64` / ranges, and
//! [`seq::SliceRandom::shuffle`]. The streams are NOT the same as real
//! rand's — only determinism per seed is guaranteed, which is all the
//! simulator and test suites rely on.

pub mod rngs;
pub mod seq;

/// Core random source: everything derives from `next_u64`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an [`Rng`] (`rand`'s `StandardUniform`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                ((start as u128) + draw) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods (rand 0.10 splits these from the core
/// trait; the blanket impl makes them available on every [`Rng`]).
pub trait RngExt: Rng {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates an RNG from OS entropy — approximated here with the system
    /// clock plus a per-call counter (no `getrandom` without crates.io).
    fn from_os_rng() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed))
    }
}

/// A fresh, time-seeded RNG (rand 0.10's `rand::rng()` returns a thread
/// RNG; a per-call `StdRng` is close enough for the doctest-style uses
/// here, which only draw a few samples).
pub fn rng() -> rngs::StdRng {
    rngs::StdRng::from_os_rng()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0u8..=32);
            assert!(y <= 32);
            let z = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
