//! Sequence-related randomness (`shuffle`, `choose`).

use crate::{Rng, RngExt};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Picks a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=(i as u64)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With 100 elements a fixed seed virtually never yields identity.
        assert_ne!(v, sorted);
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
    }
}
